// Health counters for the streaming middleware.
//
// A production middleware is judged as much by its observability as by its
// output: operators need to see how many samples were sanitized, how often
// the planner fell back, and whether the pipeline is currently degraded.
// HealthReport is a plain counter block — cheap enough to update on every
// sample — that OnlineSmoother exposes and ext_fault_injection aggregates.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "smoother/resilience/result.hpp"

namespace smoother::resilience {

struct HealthReport {
  std::uint64_t samples_seen = 0;
  std::uint64_t samples_faulted = 0;  ///< sanitized by the TelemetryGuard
  std::array<std::uint64_t, kFaultKindCount> faults{};  ///< by FaultKind

  std::uint64_t intervals_seen = 0;
  std::uint64_t intervals_fallback = 0;  ///< any reason != kNone
  std::array<std::uint64_t, kFallbackReasonCount> fallbacks{};

  std::uint64_t degraded_entries = 0;  ///< normal -> degraded transitions
  std::uint64_t recoveries = 0;        ///< degraded -> normal transitions

  /// A telemetry sample the guard had to repair.
  void record_sample_fault(FaultKind kind);
  /// An interval-boundary fault (oracle, solver, battery, internal).
  void record_interval_fault(FaultKind kind);
  void record_fallback(FallbackReason reason);

  [[nodiscard]] std::uint64_t faults_of(FaultKind kind) const {
    return faults[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t fallbacks_of(FallbackReason reason) const {
    return fallbacks[static_cast<std::size_t>(reason)];
  }

  /// Fraction of processed intervals that fell back (0 with no intervals).
  [[nodiscard]] double fallback_rate() const;

  /// One-line counter dump for logs.
  [[nodiscard]] std::string summary() const;
};

}  // namespace smoother::resilience
