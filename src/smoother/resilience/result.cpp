#include "smoother/resilience/result.hpp"

namespace smoother::resilience {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTelemetryNaN:
      return "telemetry-nan";
    case FaultKind::kTelemetryDropout:
      return "telemetry-dropout";
    case FaultKind::kTelemetrySpike:
      return "telemetry-spike";
    case FaultKind::kTelemetryStuck:
      return "telemetry-stuck";
    case FaultKind::kBatteryOutage:
      return "battery-outage";
    case FaultKind::kOracleThrow:
      return "oracle-throw";
    case FaultKind::kOracleBadLength:
      return "oracle-bad-length";
    case FaultKind::kOracleStale:
      return "oracle-stale";
    case FaultKind::kSolverFailure:
      return "solver-failure";
    case FaultKind::kInternalError:
      return "internal-error";
  }
  return "?";
}

std::string to_string(FallbackReason reason) {
  switch (reason) {
    case FallbackReason::kNone:
      return "none";
    case FallbackReason::kTelemetryUnreliable:
      return "telemetry-unreliable";
    case FallbackReason::kBatteryFaulted:
      return "battery-faulted";
    case FallbackReason::kOracleFailed:
      return "oracle-failed";
    case FallbackReason::kSolverNotConverged:
      return "solver-not-converged";
    case FallbackReason::kDegradedHold:
      return "degraded-hold";
    case FallbackReason::kInternalError:
      return "internal-error";
  }
  return "?";
}

}  // namespace smoother::resilience
