#include "smoother/resilience/telemetry_guard.hpp"

#include <cmath>
#include <stdexcept>

namespace smoother::resilience {

void TelemetryGuardConfig::validate() const {
  if (!std::isfinite(rated_power_kw) || rated_power_kw < 0.0)
    throw std::invalid_argument(
        "TelemetryGuardConfig: rated power must be finite and >= 0");
  if (!std::isfinite(spike_clamp_factor) || spike_clamp_factor < 1.0)
    throw std::invalid_argument(
        "TelemetryGuardConfig: spike clamp factor must be >= 1");
}

TelemetryGuard::TelemetryGuard(TelemetryGuardConfig config)
    : config_(config) {
  config_.validate();
}

GuardedSample TelemetryGuard::sanitize(double raw_kw) {
  if (!config_.enabled) return {raw_kw, FaultKind::kNone};
  if (!std::isfinite(raw_kw)) return {last_good_kw_, FaultKind::kTelemetryNaN};
  if (config_.rated_power_kw > 0.0) {
    const double bound = config_.spike_clamp_factor * config_.rated_power_kw;
    if (raw_kw > bound)
      return {config_.rated_power_kw, FaultKind::kTelemetrySpike};
    // A large negative reading is just as implausible for a generator; the
    // closest physical value is "not generating".
    if (raw_kw < -bound) return {0.0, FaultKind::kTelemetrySpike};
  }
  last_good_kw_ = raw_kw;
  return {raw_kw, FaultKind::kNone};
}

GuardedSample TelemetryGuard::fill_gap() {
  return {last_good_kw_, FaultKind::kTelemetryDropout};
}

void TelemetryGuard::restore_last_good(double kw) {
  if (!std::isfinite(kw))
    throw std::invalid_argument(
        "TelemetryGuard::restore_last_good: value must be finite");
  last_good_kw_ = kw;
}

}  // namespace smoother::resilience
