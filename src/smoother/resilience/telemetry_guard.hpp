// Telemetry sanitization in front of the streaming pipeline.
//
// Real generation telemetry drops samples, emits NaN after sensor resets,
// and spikes to implausible magnitudes on electrical transients. The guard
// sits directly in front of OnlineSmoother::push and turns every raw sample
// into a usable one: non-finite values and dropouts are gap-filled by
// persistence (the last good sample), spikes beyond a multiple of the rated
// power are clamped to rated power. Each repair is classified with the
// FaultKind it corrects so the caller can count it and, when too much of an
// interval was repaired, decline to plan on the fabricated data.
//
// On clean input the guard is a no-op: the value passes through untouched
// (bit-identical) and no fault is recorded.
#pragma once

#include "smoother/resilience/result.hpp"

namespace smoother::resilience {

struct TelemetryGuardConfig {
  bool enabled = true;

  /// Physical plausibility bound: samples above
  /// `spike_clamp_factor * rated_power_kw` (or below its negative) are
  /// spikes. 0 rated power disables the spike check.
  double rated_power_kw = 0.0;
  double spike_clamp_factor = 3.0;

  /// Throws std::invalid_argument on non-physical parameters.
  void validate() const;
};

/// One sanitized sample: the usable value plus what (if anything) was wrong
/// with the raw reading.
struct GuardedSample {
  double value_kw = 0.0;
  FaultKind fault = FaultKind::kNone;
};

class TelemetryGuard {
 public:
  explicit TelemetryGuard(TelemetryGuardConfig config);

  [[nodiscard]] const TelemetryGuardConfig& config() const { return config_; }

  /// Sanitizes one raw sample. Never throws; always returns a finite value.
  GuardedSample sanitize(double raw_kw);

  /// Reports a missing sample (telemetry gap): returns the persistence
  /// fill, classified as kTelemetryDropout.
  GuardedSample fill_gap();

  /// The last value accepted as good (persistence source); 0 until the
  /// first good sample arrives.
  [[nodiscard]] double last_good_kw() const { return last_good_kw_; }

  /// Restores the persistence source from a checkpoint, so gap fills after
  /// a recovery repeat the same value the uninterrupted guard would have
  /// used. Throws std::invalid_argument on a non-finite value (a genuine
  /// capture is always finite — sanitize() never accepts anything else).
  void restore_last_good(double kw);

 private:
  TelemetryGuardConfig config_;
  double last_good_kw_ = 0.0;
};

}  // namespace smoother::resilience
