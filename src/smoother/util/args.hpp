// Minimal command-line argument parsing for the smoother_cli tool.
//
// Supports long options only (--name value), boolean flags (--name), typed
// getters with validation, required options, and generated usage text.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace smoother::util {

/// Thrown on unknown options, missing values/required options, or type
/// errors; the message is user-facing.
class ArgError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parse result with typed access.
class ParsedArgs {
 public:
  [[nodiscard]] bool flag(const std::string& name) const;

  /// String value; throws ArgError when absent (required-but-missing is
  /// caught at parse time, so this only fires for programmer errors).
  [[nodiscard]] std::string get(const std::string& name) const;

  [[nodiscard]] bool has(const std::string& name) const;

  /// Typed getters; throw ArgError on malformed numbers.
  [[nodiscard]] double number(const std::string& name) const;
  [[nodiscard]] std::int64_t integer(const std::string& name) const;
  [[nodiscard]] std::uint64_t unsigned_integer(const std::string& name) const;

  /// Positional arguments (anything not starting with --).
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  friend class ArgParser;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> flags_;
  std::vector<std::string> positional_;
};

/// Declarative option table + parser.
class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Boolean switch (--name).
  ArgParser& add_flag(const std::string& name, const std::string& help);

  /// Option with a value and a default.
  ArgParser& add_option(const std::string& name, const std::string& help,
                        const std::string& default_value);

  /// Option that must be provided.
  ArgParser& add_required(const std::string& name, const std::string& help);

  /// Parses `args` (without the program name). Throws ArgError listing the
  /// problem; call usage() for the help text.
  [[nodiscard]] ParsedArgs parse(const std::vector<std::string>& args) const;

  [[nodiscard]] std::string usage() const;

 private:
  struct Spec {
    std::string help;
    bool is_flag = false;
    bool required = false;
    std::optional<std::string> default_value;
  };

  std::string program_;
  std::string description_;
  std::vector<std::pair<std::string, Spec>> specs_;  // declaration order

  [[nodiscard]] const Spec* find(const std::string& name) const;
};

}  // namespace smoother::util
