#include "smoother/util/args.hpp"

#include <charconv>

namespace smoother::util {

bool ParsedArgs::flag(const std::string& name) const {
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second;
}

bool ParsedArgs::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string ParsedArgs::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end())
    throw ArgError("internal: option --" + name + " was never declared");
  return it->second;
}

double ParsedArgs::number(const std::string& name) const {
  const std::string raw = get(name);
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(raw.data(), raw.data() + raw.size(), value);
  if (ec != std::errc() || ptr != raw.data() + raw.size())
    throw ArgError("--" + name + " expects a number, got '" + raw + "'");
  return value;
}

std::int64_t ParsedArgs::integer(const std::string& name) const {
  const std::string raw = get(name);
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(raw.data(), raw.data() + raw.size(), value);
  if (ec != std::errc() || ptr != raw.data() + raw.size())
    throw ArgError("--" + name + " expects an integer, got '" + raw + "'");
  return value;
}

std::uint64_t ParsedArgs::unsigned_integer(const std::string& name) const {
  const std::int64_t value = integer(name);
  if (value < 0)
    throw ArgError("--" + name + " must be non-negative");
  return static_cast<std::uint64_t>(value);
}

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser& ArgParser::add_flag(const std::string& name,
                               const std::string& help) {
  Spec spec;
  spec.help = help;
  spec.is_flag = true;
  specs_.emplace_back(name, std::move(spec));
  return *this;
}

ArgParser& ArgParser::add_option(const std::string& name,
                                 const std::string& help,
                                 const std::string& default_value) {
  Spec spec;
  spec.help = help;
  spec.default_value = default_value;
  specs_.emplace_back(name, std::move(spec));
  return *this;
}

ArgParser& ArgParser::add_required(const std::string& name,
                                   const std::string& help) {
  Spec spec;
  spec.help = help;
  spec.required = true;
  specs_.emplace_back(name, std::move(spec));
  return *this;
}

const ArgParser::Spec* ArgParser::find(const std::string& name) const {
  for (const auto& [spec_name, spec] : specs_)
    if (spec_name == name) return &spec;
  return nullptr;
}

ParsedArgs ArgParser::parse(const std::vector<std::string>& args) const {
  ParsedArgs parsed;
  // Seed defaults.
  for (const auto& [name, spec] : specs_) {
    if (spec.is_flag)
      parsed.flags_[name] = false;
    else if (spec.default_value)
      parsed.values_[name] = *spec.default_value;
  }

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      parsed.positional_.push_back(arg);
      continue;
    }
    const std::string name = arg.substr(2);
    const Spec* spec = find(name);
    if (spec == nullptr) throw ArgError("unknown option --" + name);
    if (spec->is_flag) {
      parsed.flags_[name] = true;
      continue;
    }
    if (i + 1 >= args.size())
      throw ArgError("--" + name + " expects a value");
    parsed.values_[name] = args[++i];
  }

  for (const auto& [name, spec] : specs_) {
    if (spec.required && parsed.values_.count(name) == 0)
      throw ArgError("missing required option --" + name);
  }
  return parsed;
}

std::string ArgParser::usage() const {
  std::string out = "usage: " + program_ + " [options]\n  " + description_ +
                    "\n\noptions:\n";
  for (const auto& [name, spec] : specs_) {
    out += "  --" + name;
    if (!spec.is_flag) out += " <value>";
    out += "\n      " + spec.help;
    if (spec.required)
      out += " (required)";
    else if (spec.default_value)
      out += " (default: " + *spec.default_value + ")";
    out += "\n";
  }
  return out;
}

}  // namespace smoother::util
