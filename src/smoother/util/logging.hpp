// Small leveled logger used by the simulator and bench harness.
//
// Logging is stream-based and globally level-filtered; it is intentionally
// not thread-hot-path material (the simulator logs per-interval decisions at
// Debug, off by default).
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>
#include <string_view>

namespace smoother::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Name of a level ("DEBUG", "INFO", ...).
[[nodiscard]] std::string_view log_level_name(LogLevel level);

/// Global logger configuration. Defaults: Info level, stderr sink.
class Logger {
 public:
  /// The process-wide logger instance.
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  /// Redirect output (tests use an ostringstream); pass nullptr for stderr.
  void set_sink(std::ostream* sink) { sink_ = sink; }

  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(level_);
  }

  /// Emits one record: "[LEVEL] component: message\n".
  void write(LogLevel level, std::string_view component,
             std::string_view message);

 private:
  Logger() = default;

  LogLevel level_ = LogLevel::kInfo;
  std::ostream* sink_ = nullptr;  // nullptr => std::cerr
};

/// Builder for one log record; emits on destruction.
///
///   LogMessage(LogLevel::kInfo, "sim") << "interval " << i << " done";
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (Logger::instance().enabled(level_)) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

#define SMOOTHER_LOG(level, component) \
  ::smoother::util::LogMessage(::smoother::util::LogLevel::level, component)

}  // namespace smoother::util
