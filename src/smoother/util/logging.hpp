// Small leveled logger used by the simulator and bench harness.
//
// Logging is stream-based and globally level-filtered; it is intentionally
// not thread-hot-path material (the simulator logs per-interval decisions at
// Debug, off by default).
//
// Sink contract
// -------------
// Output goes through the pluggable LogSink interface. Rules a sink
// implementation must follow:
//
//   * write() is called only for records that passed the level filter —
//     sinks do not re-filter (except an explicit tee like
//     obs::LogCaptureSink, which applies its own minimum level).
//   * write() receives the raw (level, component, message) triple and owns
//     all formatting; StreamLogSink renders the classic
//     "[LEVEL] component: message\n" form.
//   * Sinks are non-owning from the Logger's point of view: the caller
//     keeps the sink alive for as long as it is installed (install
//     nullptr, or a replacement, before destroying it).
//   * write() may be called from any thread; the Logger performs no
//     locking of its own, so a sink that can race must synchronize
//     internally (stderr's stream inserter is atomic enough for the
//     line-at-a-time records produced here).
//
// Two sinks are installed at once: the *primary* sink (defaults to a
// stderr StreamLogSink) and an optional *capture* sink that tees every
// record also sent to the primary — smoother::obs uses this to record
// WARN+ events into trace logs without silencing the console.
#pragma once

#include <functional>
#include <iosfwd>
#include <sstream>
#include <string>
#include <string_view>

namespace smoother::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Name of a level ("DEBUG", "INFO", ...).
[[nodiscard]] std::string_view log_level_name(LogLevel level);

/// Pluggable output target; see the sink contract above.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void write(LogLevel level, std::string_view component,
                     std::string_view message) = 0;
};

/// Renders "[LEVEL] component: message\n" to an ostream (stderr default).
class StreamLogSink final : public LogSink {
 public:
  /// nullptr targets std::cerr (resolved at write time, so a sink built
  /// before std::cerr is used remains safe).
  explicit StreamLogSink(std::ostream* os = nullptr) : os_(os) {}

  void write(LogLevel level, std::string_view component,
             std::string_view message) override;

 private:
  std::ostream* os_;
};

/// Invokes a callback per record; the adapter for tests and exporters
/// that want records as data rather than text.
class CallbackLogSink final : public LogSink {
 public:
  using Callback =
      std::function<void(LogLevel, std::string_view, std::string_view)>;

  explicit CallbackLogSink(Callback callback)
      : callback_(std::move(callback)) {}

  void write(LogLevel level, std::string_view component,
             std::string_view message) override {
    if (callback_) callback_(level, component, message);
  }

 private:
  Callback callback_;
};

/// Global logger configuration. Defaults: Info level, stderr sink.
class Logger {
 public:
  /// The process-wide logger instance.
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  /// Installs the primary sink (non-owning); nullptr restores the default
  /// stderr StreamLogSink.
  void set_log_sink(LogSink* sink) { sink_ = sink; }

  /// Installs a tee: every record written to the primary sink is also
  /// sent here (non-owning; nullptr clears). obs::LogCaptureSink plugs in
  /// through this to mirror WARN+ records into trace event logs.
  void set_capture_sink(LogSink* sink) { capture_ = sink; }

  /// Back-compat stream redirect (tests use an ostringstream); pass
  /// nullptr for stderr. Wraps the stream in an internal StreamLogSink
  /// and installs it as the primary sink.
  void set_sink(std::ostream* sink);

  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(level_);
  }

  /// Emits one record through the primary sink and the capture tee.
  void write(LogLevel level, std::string_view component,
             std::string_view message);

 private:
  Logger() = default;

  LogLevel level_ = LogLevel::kInfo;
  LogSink* sink_ = nullptr;     // nullptr => default stderr sink
  LogSink* capture_ = nullptr;  // optional tee
  StreamLogSink stderr_sink_{nullptr};
  StreamLogSink redirect_sink_{nullptr};  // backs set_sink(std::ostream*)
};

/// Builder for one log record; emits on destruction.
///
///   LogMessage(LogLevel::kInfo, "sim") << "interval " << i << " done";
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (Logger::instance().enabled(level_)) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

#define SMOOTHER_LOG(level, component) \
  ::smoother::util::LogMessage(::smoother::util::LogLevel::level, component)

}  // namespace smoother::util
