// Strongly-typed physical quantities used throughout Smoother.
//
// Power is carried in kilowatts (kW), energy in kilowatt-hours (kWh) and
// durations in minutes. Each quantity is a thin value wrapper: it costs
// nothing at runtime but stops a kW from being silently added to a kWh.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>

namespace smoother::util {

/// CRTP value wrapper for a scalar physical quantity.
///
/// Derived types get full arithmetic against themselves and scaling by
/// dimensionless doubles; cross-unit arithmetic must go through explicit
/// conversion functions (e.g. Kilowatts * Minutes -> KilowattHours).
template <typename Derived>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double value) : value_(value) {}

  /// Raw magnitude in the unit the derived type documents.
  [[nodiscard]] constexpr double value() const { return value_; }

  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived{a.value_ + b.value_};
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived{a.value_ - b.value_};
  }
  friend constexpr Derived operator-(Derived a) { return Derived{-a.value_}; }
  friend constexpr Derived operator*(Derived a, double s) {
    return Derived{a.value_ * s};
  }
  friend constexpr Derived operator*(double s, Derived a) {
    return Derived{a.value_ * s};
  }
  friend constexpr Derived operator/(Derived a, double s) {
    return Derived{a.value_ / s};
  }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) {
    return a.value_ / b.value_;
  }
  constexpr Derived& operator+=(Derived b) {
    value_ += b.value_;
    return static_cast<Derived&>(*this);
  }
  constexpr Derived& operator-=(Derived b) {
    value_ -= b.value_;
    return static_cast<Derived&>(*this);
  }
  constexpr Derived& operator*=(double s) {
    value_ *= s;
    return static_cast<Derived&>(*this);
  }
  friend constexpr auto operator<=>(Derived a, Derived b) {
    return a.value_ <=> b.value_;
  }
  friend constexpr bool operator==(Derived a, Derived b) {
    return a.value_ == b.value_;
  }

 private:
  double value_ = 0.0;
};

/// Electrical power in kilowatts.
class Kilowatts : public Quantity<Kilowatts> {
 public:
  using Quantity::Quantity;
};

/// Electrical energy in kilowatt-hours.
class KilowattHours : public Quantity<KilowattHours> {
 public:
  using Quantity::Quantity;
};

/// Time span in minutes. Trace steps in this project are typically one or
/// five minutes; a full evaluation horizon is tens of thousands of minutes.
class Minutes : public Quantity<Minutes> {
 public:
  using Quantity::Quantity;
};

/// Wind speed in metres per second.
class MetresPerSecond : public Quantity<MetresPerSecond> {
 public:
  using Quantity::Quantity;
};

/// Energy delivered by holding `p` for `dt`.
[[nodiscard]] constexpr KilowattHours energy(Kilowatts p, Minutes dt) {
  return KilowattHours{p.value() * dt.value() / 60.0};
}

/// Average power that delivers `e` over `dt`.
[[nodiscard]] constexpr Kilowatts average_power(KilowattHours e, Minutes dt) {
  return Kilowatts{e.value() * 60.0 / dt.value()};
}

/// Hours expressed in minutes.
[[nodiscard]] constexpr Minutes hours(double h) { return Minutes{h * 60.0}; }

/// Days expressed in minutes.
[[nodiscard]] constexpr Minutes days(double d) { return Minutes{d * 24.0 * 60.0}; }

inline constexpr Minutes kFiveMinutes{5.0};
inline constexpr Minutes kOneMinute{1.0};
inline constexpr Minutes kOneHour{60.0};
inline constexpr Minutes kOneDay{24.0 * 60.0};

}  // namespace smoother::util
