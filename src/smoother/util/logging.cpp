#include "smoother/util/logging.hpp"

#include <iostream>

namespace smoother::util {

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void StreamLogSink::write(LogLevel level, std::string_view component,
                          std::string_view message) {
  std::ostream& os = os_ != nullptr ? *os_ : std::cerr;
  os << '[' << log_level_name(level) << "] " << component << ": " << message
     << '\n';
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::ostream* sink) {
  if (sink == nullptr) {
    sink_ = nullptr;  // default stderr sink
    return;
  }
  redirect_sink_ = StreamLogSink(sink);
  sink_ = &redirect_sink_;
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view message) {
  if (!enabled(level)) return;
  LogSink& primary = sink_ != nullptr ? *sink_ : stderr_sink_;
  primary.write(level, component, message);
  if (capture_ != nullptr) capture_->write(level, component, message);
}

LogMessage::~LogMessage() {
  if (Logger::instance().enabled(level_))
    Logger::instance().write(level_, component_, stream_.str());
}

}  // namespace smoother::util
