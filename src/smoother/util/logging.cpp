#include "smoother/util/logging.hpp"

#include <iostream>

namespace smoother::util {

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view message) {
  if (!enabled(level)) return;
  std::ostream& os = sink_ != nullptr ? *sink_ : std::cerr;
  os << '[' << log_level_name(level) << "] " << component << ": " << message
     << '\n';
}

LogMessage::~LogMessage() {
  if (Logger::instance().enabled(level_))
    Logger::instance().write(level_, component_, stream_.str());
}

}  // namespace smoother::util
