// Minimal CSV reading/writing for traces and benchmark output.
//
// The dialect is deliberately small: comma separator, first row is the
// header, numeric payload, '#'-prefixed comment lines are skipped. This is
// what the bench harness emits and what the trace loaders consume.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace smoother::util {

/// An in-memory CSV table with a header row and numeric columns.
class CsvTable {
 public:
  CsvTable() = default;

  /// Creates an empty table with the given column names.
  explicit CsvTable(std::vector<std::string> header);

  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] std::size_t columns() const { return header_.size(); }
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Appends a row; its size must equal columns().
  void add_row(std::vector<double> row);

  [[nodiscard]] const std::vector<double>& row(std::size_t r) const;

  /// Cell access by row index and column index.
  [[nodiscard]] double cell(std::size_t r, std::size_t c) const;

  /// Index of the named column; throws std::out_of_range when absent.
  [[nodiscard]] std::size_t column_index(std::string_view name) const;

  /// The full named column as a vector.
  [[nodiscard]] std::vector<double> column(std::string_view name) const;

  /// Serializes the table (header + rows, 10 significant digits).
  void write(std::ostream& os) const;

  /// Writes to a file; throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;

  /// Parses a table from a stream; throws std::runtime_error on malformed
  /// input (ragged rows, non-numeric or non-finite cells), naming the
  /// offending line and column.
  static CsvTable read(std::istream& is);

  /// Loads a table from a file; throws std::runtime_error on I/O failure.
  static CsvTable load(const std::string& path);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<double>> rows_;
};

/// Splits one CSV line on commas (no quoting support, by design).
[[nodiscard]] std::vector<std::string> split_csv_line(std::string_view line);

}  // namespace smoother::util
