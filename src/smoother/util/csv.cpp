#include "smoother/util/csv.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace smoother::util {

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty())
    throw std::invalid_argument("CsvTable: header must be non-empty");
}

void CsvTable::add_row(std::vector<double> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("CsvTable::add_row: column count mismatch");
  rows_.push_back(std::move(row));
}

const std::vector<double>& CsvTable::row(std::size_t r) const {
  if (r >= rows_.size()) throw std::out_of_range("CsvTable::row");
  return rows_[r];
}

double CsvTable::cell(std::size_t r, std::size_t c) const {
  if (c >= header_.size()) throw std::out_of_range("CsvTable::cell column");
  return row(r)[c];
}

std::size_t CsvTable::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < header_.size(); ++i)
    if (header_[i] == name) return i;
  throw std::out_of_range("CsvTable: no column named '" + std::string(name) +
                          "'");
}

std::vector<double> CsvTable::column(std::string_view name) const {
  const std::size_t c = column_index(name);
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& r : rows_) out.push_back(r[c]);
  return out;
}

void CsvTable::write(std::ostream& os) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << header_[i];
  }
  os << '\n';
  char buf[64];
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i) os << ',';
      std::snprintf(buf, sizeof(buf), "%.10g", r[i]);
      os << buf;
    }
    os << '\n';
  }
}

void CsvTable::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("CsvTable::save: cannot open " + path);
  write(out);
  if (!out) throw std::runtime_error("CsvTable::save: write failed " + path);
}

std::vector<std::string> split_csv_line(std::string_view line) {
  std::vector<std::string> cells;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      cells.emplace_back(line.substr(start));
      break;
    }
    cells.emplace_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return cells;
}

namespace {

std::string trim(std::string s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  std::size_t b = 0, e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

double parse_cell(const std::string& raw, std::size_t line_no,
                  std::size_t column, const std::string& column_name) {
  const std::string cell = trim(raw);
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(cell.data(), cell.data() + cell.size(), value);
  if (ec != std::errc() || ptr != cell.data() + cell.size())
    throw std::runtime_error("CsvTable: non-numeric cell '" + cell +
                             "' on line " + std::to_string(line_no) +
                             ", column " + std::to_string(column + 1) + " ('" +
                             column_name + "')");
  // from_chars accepts "nan"/"inf" spellings; a trace with non-finite cells
  // is corrupt and must not leak garbage into downstream pipelines.
  if (!std::isfinite(value))
    throw std::runtime_error("CsvTable: non-finite cell '" + cell +
                             "' on line " + std::to_string(line_no) +
                             ", column " + std::to_string(column + 1) + " ('" +
                             column_name + "')");
  return value;
}

}  // namespace

CsvTable CsvTable::read(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;
  // Header: first non-comment, non-blank line.
  std::vector<std::string> header;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    for (auto& cell : split_csv_line(t)) header.push_back(trim(cell));
    break;
  }
  if (header.empty()) throw std::runtime_error("CsvTable: missing header");
  CsvTable table(std::move(header));
  while (std::getline(is, line)) {
    ++line_no;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    const auto cells = split_csv_line(t);
    if (cells.size() != table.columns())
      throw std::runtime_error(
          "CsvTable: ragged row on line " + std::to_string(line_no) + ": got " +
          std::to_string(cells.size()) + " cells, expected " +
          std::to_string(table.columns()));
    std::vector<double> row;
    row.reserve(cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c)
      row.push_back(parse_cell(cells[c], line_no, c, table.header()[c]));
    table.add_row(std::move(row));
  }
  return table;
}

CsvTable CsvTable::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("CsvTable::load: cannot open " + path);
  return read(in);
}

}  // namespace smoother::util
