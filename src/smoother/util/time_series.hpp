// Uniformly-sampled time series: the common currency of Smoother.
//
// Wind power supply, cluster power demand and battery schedules are all
// uniformly sampled series (typically 1-minute or 5-minute steps). The
// container stores the step length explicitly so resampling between the
// 5-minute renewable traces and the 1-minute scheduling slots is checked
// rather than implicit.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "smoother/util/units.hpp"

namespace smoother::util {

/// A uniformly sampled scalar time series.
///
/// `value(i)` is the average over the half-open window
/// [start + i*step, start + (i+1)*step). Arithmetic between two series
/// requires identical step and length (checked, throws std::invalid_argument).
class TimeSeries {
 public:
  TimeSeries() = default;

  /// Series of `values.size()` samples spaced `step` apart.
  TimeSeries(Minutes step, std::vector<double> values);

  /// Zero-filled series with `count` samples.
  TimeSeries(Minutes step, std::size_t count);

  [[nodiscard]] Minutes step() const { return step_; }
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }

  /// Total covered duration (size * step).
  [[nodiscard]] Minutes duration() const {
    return Minutes{step_.value() * static_cast<double>(values_.size())};
  }

  [[nodiscard]] double operator[](std::size_t i) const { return values_[i]; }
  double& operator[](std::size_t i) { return values_[i]; }

  /// Bounds-checked access.
  [[nodiscard]] double at(std::size_t i) const;

  [[nodiscard]] std::span<const double> values() const { return values_; }
  [[nodiscard]] std::span<double> values() { return values_; }

  /// Timestamp (minutes from series start) of sample i's window start.
  [[nodiscard]] Minutes time_at(std::size_t i) const {
    return Minutes{step_.value() * static_cast<double>(i)};
  }

  /// Index of the sample whose window contains time t; t must lie inside
  /// the series, otherwise throws std::out_of_range.
  [[nodiscard]] std::size_t index_at(Minutes t) const;

  void push_back(double v) { values_.push_back(v); }
  void reserve(std::size_t n) { values_.reserve(n); }

  /// Removes the first `count` samples in place, keeping capacity (no
  /// allocation — the retention primitive behind OnlineSmoother::compact).
  /// `count` past the end clears the series.
  void drop_front(std::size_t count);

  /// Contiguous sub-series of `count` samples starting at `first`.
  [[nodiscard]] TimeSeries slice(std::size_t first, std::size_t count) const;

  /// Downsample by an integer factor, averaging each block. The series
  /// length must be divisible by `factor`.
  [[nodiscard]] TimeSeries downsample(std::size_t factor) const;

  /// Upsample by an integer factor, repeating each sample (zero-order hold);
  /// preserves the average level so energy totals are unchanged.
  [[nodiscard]] TimeSeries upsample(std::size_t factor) const;

  /// Resample to the requested step using downsample/upsample; the ratio of
  /// steps must be an integer in one direction or the other.
  [[nodiscard]] TimeSeries resample(Minutes new_step) const;

  /// Elementwise transform.
  [[nodiscard]] TimeSeries map(const std::function<double(double)>& fn) const;

  /// Elementwise sum/difference of equally shaped series.
  [[nodiscard]] TimeSeries operator+(const TimeSeries& other) const;
  [[nodiscard]] TimeSeries operator-(const TimeSeries& other) const;
  [[nodiscard]] TimeSeries operator*(double scale) const;

  /// Clamp each sample into [lo, hi].
  [[nodiscard]] TimeSeries clamped(double lo, double hi) const;

  /// Sum of samples (not energy; multiply by step for that).
  [[nodiscard]] double sum() const;

  /// Mean of samples; 0 for an empty series.
  [[nodiscard]] double mean() const;

  /// Population variance of samples; 0 for series shorter than 1.
  [[nodiscard]] double variance() const;

  /// Smallest / largest sample; throws std::logic_error when empty.
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Integral of the series interpreted as power in kW: total energy in kWh.
  [[nodiscard]] KilowattHours total_energy() const;

  bool operator==(const TimeSeries&) const = default;

 private:
  void require_same_shape(const TimeSeries& other) const;

  Minutes step_{1.0};
  std::vector<double> values_;
};

/// Elementwise minimum of two equally shaped series: the usable overlap of
/// supply and demand (how the paper computes renewable-energy use).
[[nodiscard]] TimeSeries elementwise_min(const TimeSeries& a,
                                         const TimeSeries& b);

/// Elementwise maximum of two equally shaped series.
[[nodiscard]] TimeSeries elementwise_max(const TimeSeries& a,
                                         const TimeSeries& b);

}  // namespace smoother::util
