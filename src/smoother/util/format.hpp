// printf-style std::string formatting (libstdc++ 12 has no <format>).
#pragma once

#include <cstdio>
#include <stdexcept>
#include <string>

namespace smoother::util {

/// Returns the snprintf-formatted string. Throws std::runtime_error on a
/// formatting error. Arguments must match the format string exactly, as
/// with snprintf (no std::string — pass .c_str()).
template <typename... Args>
[[nodiscard]] std::string strfmt(const char* fmt, Args... args) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wformat-nonliteral"
  const int needed = std::snprintf(nullptr, 0, fmt, args...);
  if (needed < 0) throw std::runtime_error("strfmt: encoding error");
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::snprintf(out.data(), out.size() + 1, fmt, args...);
#pragma GCC diagnostic pop
  return out;
}

}  // namespace smoother::util
