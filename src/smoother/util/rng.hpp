// Deterministic pseudo-random number generation.
//
// Every stochastic component in Smoother takes an explicit seed so that
// traces, tests and benchmark figures are bit-reproducible across runs and
// machines. The engine is xoshiro256** seeded through splitmix64, both
// implemented here so the project does not depend on unspecified libstdc++
// distribution internals.
//
// Portability guarantee (audited: no std::*_distribution, std::mt19937 or
// std::shuffle anywhere in the repo — every draw goes through this file):
//
//   * Engine outputs (SplitMix64, Xoshiro256), uniform_index() and
//     derive_stream_seed() are pure 64-bit integer arithmetic: bit-exact on
//     every conforming C++ implementation, any compiler, any platform.
//   * uniform() maps the top 53 engine bits through one exact IEEE-754
//     multiply by 2^-53: bit-exact everywhere, and every derived draw that
//     only rescales it linearly (uniform(lo,hi), bernoulli) consumes the
//     engine identically everywhere.
//   * Draws that pass through libm transcendentals (normal, exponential,
//     weibull, poisson above mean 64, lognormal, pareto) consume the same
//     engine outputs everywhere, but their values are only bit-exact per
//     libm: log/sin/cos/pow are not required to be correctly rounded, so
//     the last ulps may differ across C libraries. On one platform they are
//     bit-reproducible run to run; cross-platform comparisons of artifacts
//     built on them should use tolerances, not byte equality.
//
// test_rng pins golden values for all three tiers (exact for the integer/
// uniform tier, tight tolerances for the transcendental tier) so any change
// to the draw algorithms — which would silently reseed every generated
// trace in the repo — fails loudly.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace smoother::util {

/// splitmix64: used to expand a single 64-bit seed into engine state.
/// Reference: Sebastiano Vigna, public domain.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG with 2^256-1 period.
/// Satisfies the UniformRandomBitGenerator requirements.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// The raw 256-bit engine state, for checkpointing. Restoring it with
  /// set_state() resumes the output sequence exactly where it left off.
  [[nodiscard]] constexpr const std::array<std::uint64_t, 4>& state() const {
    return state_;
  }

  /// Restores a state captured with state(). The all-zero state is the one
  /// fixed point of xoshiro256** (it would emit zeros forever), so it is
  /// rejected; a valid checkpoint can never contain it because seeding
  /// through splitmix64 never produces it.
  void set_state(const std::array<std::uint64_t, 4>& state);

  /// Equivalent to 2^128 calls of operator(); used to derive independent
  /// streams from one seed.
  constexpr void jump() {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> s = {0, 0, 0, 0};
    for (std::uint64_t jump_word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if (jump_word & (1ULL << bit)) {
          for (std::size_t i = 0; i < 4; ++i) s[i] ^= state_[i];
        }
        (*this)();
      }
    }
    state_ = s;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// The complete serializable state of an Rng: the engine words plus the
/// wrapper's own bookkeeping. The cached Box-Muller variate is part of the
/// draw sequence — dropping it would shift every subsequent normal() by one
/// half-pair — so it rides along. smoother::persist encodes this struct;
/// it lives here so the Rng stays the single owner of its invariants.
struct RngState {
  std::array<std::uint64_t, 4> engine{};
  std::uint64_t seed = 0;   ///< split()/fork() derivation base
  std::uint64_t forks = 0;  ///< fork counter (part of fork identity)
  double cached_normal = 0.0;
  bool has_cached_normal = false;
};

/// Convenience wrapper bundling an engine with the distributions Smoother's
/// trace generators need. All draws are implemented locally (no libstdc++
/// distributions) so that generated traces are identical on every platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with the given rate lambda (> 0).
  double exponential(double lambda);

  /// Weibull with shape k (> 0) and scale lambda (> 0). The long-run
  /// distribution of wind speed is classically Weibull with k around 2.
  double weibull(double shape, double scale);

  /// Poisson with the given mean. Knuth's method for small means,
  /// normal approximation above 64 (adequate for request-count noise).
  std::uint64_t poisson(double mean);

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p);

  /// Log-normal: exp(normal(mu, sigma)). Used for batch job runtimes.
  double lognormal(double mu, double sigma);

  /// Pareto with minimum xm (> 0) and tail index alpha (> 0); heavy-tailed
  /// sizes for batch jobs.
  double pareto(double xm, double alpha);

  Xoshiro256& engine() { return engine_; }

  /// Fork an independent stream (jump-ahead); the parent stream advances.
  Rng fork();

  /// Derive the independent stream `stream_id` of this generator's seed.
  ///
  /// Unlike fork(), split() is a pure function of the construction seed and
  /// the stream id: it does not advance the parent, the same id always
  /// yields the same stream, and the order in which ids are requested is
  /// irrelevant. This is the primitive behind deterministic parallelism —
  /// task i draws from split(i), so results are bit-identical no matter
  /// how tasks are scheduled across threads.
  [[nodiscard]] Rng split(std::uint64_t stream_id) const;

  /// The seed value used to derive split() streams from (seed, stream_id).
  /// Exposed so tests can pin the derivation.
  static std::uint64_t derive_stream_seed(std::uint64_t seed,
                                          std::uint64_t stream_id);

  /// Captures the complete draw state. restore()ing it on any Rng resumes
  /// the exact output sequence: the next N draws equal the next N draws the
  /// captured generator would have produced (test_rng pins this with a
  /// 64-draw golden comparison).
  [[nodiscard]] RngState state() const;

  /// Restores a state captured with state(). Throws std::invalid_argument
  /// on an all-zero engine state or a non-finite cached variate (neither
  /// can come from a genuine capture).
  void restore(const RngState& state);

 private:
  explicit Rng(Xoshiro256 engine, std::uint64_t seed)
      : engine_(engine), seed_(seed) {}

  Xoshiro256 engine_;
  std::uint64_t seed_ = 0;
  std::uint64_t forks_ = 0;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace smoother::util
