#include "smoother/util/time_series.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace smoother::util {

TimeSeries::TimeSeries(Minutes step, std::vector<double> values)
    : step_(step), values_(std::move(values)) {
  if (step.value() <= 0.0)
    throw std::invalid_argument("TimeSeries: step must be positive");
}

TimeSeries::TimeSeries(Minutes step, std::size_t count)
    : TimeSeries(step, std::vector<double>(count, 0.0)) {}

double TimeSeries::at(std::size_t i) const {
  if (i >= values_.size()) throw std::out_of_range("TimeSeries::at");
  return values_[i];
}

std::size_t TimeSeries::index_at(Minutes t) const {
  if (t.value() < 0.0 || t >= duration())
    throw std::out_of_range("TimeSeries::index_at: time outside series");
  return static_cast<std::size_t>(t.value() / step_.value());
}

void TimeSeries::drop_front(std::size_t count) {
  const std::size_t n = std::min(count, values_.size());
  values_.erase(values_.begin(), values_.begin() + static_cast<std::ptrdiff_t>(n));
}

TimeSeries TimeSeries::slice(std::size_t first, std::size_t count) const {
  if (first + count > values_.size())
    throw std::out_of_range("TimeSeries::slice");
  return TimeSeries(
      step_, std::vector<double>(values_.begin() + static_cast<std::ptrdiff_t>(first),
                                 values_.begin() + static_cast<std::ptrdiff_t>(first + count)));
}

TimeSeries TimeSeries::downsample(std::size_t factor) const {
  if (factor == 0) throw std::invalid_argument("downsample: factor == 0");
  if (values_.size() % factor != 0)
    throw std::invalid_argument("downsample: size not divisible by factor");
  std::vector<double> out;
  out.reserve(values_.size() / factor);
  for (std::size_t i = 0; i < values_.size(); i += factor) {
    double acc = 0.0;
    for (std::size_t j = 0; j < factor; ++j) acc += values_[i + j];
    out.push_back(acc / static_cast<double>(factor));
  }
  return TimeSeries(Minutes{step_.value() * static_cast<double>(factor)},
                    std::move(out));
}

TimeSeries TimeSeries::upsample(std::size_t factor) const {
  if (factor == 0) throw std::invalid_argument("upsample: factor == 0");
  std::vector<double> out;
  out.reserve(values_.size() * factor);
  for (double v : values_)
    for (std::size_t j = 0; j < factor; ++j) out.push_back(v);
  return TimeSeries(Minutes{step_.value() / static_cast<double>(factor)},
                    std::move(out));
}

TimeSeries TimeSeries::resample(Minutes new_step) const {
  if (new_step.value() <= 0.0)
    throw std::invalid_argument("resample: step must be positive");
  const double ratio = new_step.value() / step_.value();
  if (ratio >= 1.0) {
    const double factor = std::round(ratio);
    if (std::abs(ratio - factor) > 1e-9)
      throw std::invalid_argument("resample: steps are not integer multiples");
    return downsample(static_cast<std::size_t>(factor));
  }
  const double factor = std::round(1.0 / ratio);
  if (std::abs(1.0 / ratio - factor) > 1e-9)
    throw std::invalid_argument("resample: steps are not integer multiples");
  return upsample(static_cast<std::size_t>(factor));
}

TimeSeries TimeSeries::map(const std::function<double(double)>& fn) const {
  std::vector<double> out;
  out.reserve(values_.size());
  for (double v : values_) out.push_back(fn(v));
  return TimeSeries(step_, std::move(out));
}

void TimeSeries::require_same_shape(const TimeSeries& other) const {
  if (step_ != other.step_ || values_.size() != other.values_.size())
    throw std::invalid_argument("TimeSeries: shape mismatch");
}

TimeSeries TimeSeries::operator+(const TimeSeries& other) const {
  require_same_shape(other);
  std::vector<double> out(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i)
    out[i] = values_[i] + other.values_[i];
  return TimeSeries(step_, std::move(out));
}

TimeSeries TimeSeries::operator-(const TimeSeries& other) const {
  require_same_shape(other);
  std::vector<double> out(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i)
    out[i] = values_[i] - other.values_[i];
  return TimeSeries(step_, std::move(out));
}

TimeSeries TimeSeries::operator*(double scale) const {
  std::vector<double> out(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) out[i] = values_[i] * scale;
  return TimeSeries(step_, std::move(out));
}

TimeSeries TimeSeries::clamped(double lo, double hi) const {
  if (lo > hi) throw std::invalid_argument("clamped: lo > hi");
  return map([lo, hi](double v) { return std::clamp(v, lo, hi); });
}

double TimeSeries::sum() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double TimeSeries::mean() const {
  if (values_.empty()) return 0.0;
  return sum() / static_cast<double>(values_.size());
}

double TimeSeries::variance() const {
  if (values_.size() < 2) return 0.0;
  const double mu = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - mu) * (v - mu);
  return acc / static_cast<double>(values_.size());
}

double TimeSeries::min() const {
  if (values_.empty()) throw std::logic_error("TimeSeries::min: empty");
  return *std::min_element(values_.begin(), values_.end());
}

double TimeSeries::max() const {
  if (values_.empty()) throw std::logic_error("TimeSeries::max: empty");
  return *std::max_element(values_.begin(), values_.end());
}

KilowattHours TimeSeries::total_energy() const {
  return KilowattHours{sum() * step_.value() / 60.0};
}

TimeSeries elementwise_min(const TimeSeries& a, const TimeSeries& b) {
  if (a.step() != b.step() || a.size() != b.size())
    throw std::invalid_argument("elementwise_min: shape mismatch");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::min(a[i], b[i]);
  return TimeSeries(a.step(), std::move(out));
}

TimeSeries elementwise_max(const TimeSeries& a, const TimeSeries& b) {
  if (a.step() != b.step() || a.size() != b.size())
    throw std::invalid_argument("elementwise_max: shape mismatch");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::max(a[i], b[i]);
  return TimeSeries(a.step(), std::move(out));
}

}  // namespace smoother::util
