#include "smoother/util/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace smoother::util {

double Rng::uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("uniform_index: n must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              std::numeric_limits<std::uint64_t>::max() % n;
  std::uint64_t draw = engine_();
  while (draw >= limit) draw = engine_();
  return draw % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is kept away from zero so log() is finite.
  double u1 = uniform();
  while (u1 <= 0x1.0p-60) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double lambda) {
  if (lambda <= 0.0) throw std::invalid_argument("exponential: lambda <= 0");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

double Rng::weibull(double shape, double scale) {
  if (shape <= 0.0 || scale <= 0.0)
    throw std::invalid_argument("weibull: shape and scale must be positive");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

std::uint64_t Rng::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("poisson: mean < 0");
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction; plenty for the
    // request-count noise this project draws.
    const double draw = normal(mean, std::sqrt(mean));
    return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
  }
  const double threshold = std::exp(-mean);
  std::uint64_t count = 0;
  double product = uniform();
  while (product > threshold) {
    ++count;
    product *= uniform();
  }
  return count;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) {
  if (xm <= 0.0 || alpha <= 0.0)
    throw std::invalid_argument("pareto: xm and alpha must be positive");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return xm / std::pow(u, 1.0 / alpha);
}

Rng Rng::fork() {
  Xoshiro256 child = engine_;
  engine_.jump();  // parent moves to a disjoint subsequence
  // Forked children keep split() usable: each fork gets a distinct derived
  // seed (the fork counter is part of the identity, so repeated forks of
  // the same parent split into distinct stream families).
  return Rng(child,
             derive_stream_seed(seed_, 0x8000000000000000ULL + forks_++));
}

std::uint64_t Rng::derive_stream_seed(std::uint64_t seed,
                                      std::uint64_t stream_id) {
  // Two rounds of splitmix64 finalization over (seed, stream_id). A single
  // xor would make streams of nearby ids correlate; running the id through
  // the full avalanche mixer first decorrelates them. stream_id 0 is also
  // distinct from the base seed itself.
  SplitMix64 id_mixer(stream_id ^ 0xa3ec647659359acdULL);
  SplitMix64 seed_mixer(seed ^ id_mixer.next());
  return seed_mixer.next();
}

Rng Rng::split(std::uint64_t stream_id) const {
  return Rng(derive_stream_seed(seed_, stream_id));
}

void Xoshiro256::set_state(const std::array<std::uint64_t, 4>& state) {
  if (state[0] == 0 && state[1] == 0 && state[2] == 0 && state[3] == 0)
    throw std::invalid_argument(
        "Xoshiro256::set_state: the all-zero state is degenerate");
  state_ = state;
}

RngState Rng::state() const {
  RngState state;
  state.engine = engine_.state();
  state.seed = seed_;
  state.forks = forks_;
  state.cached_normal = cached_normal_;
  state.has_cached_normal = has_cached_normal_;
  return state;
}

void Rng::restore(const RngState& state) {
  if (state.has_cached_normal && !std::isfinite(state.cached_normal))
    throw std::invalid_argument(
        "Rng::restore: cached normal variate must be finite");
  engine_.set_state(state.engine);  // rejects the all-zero state
  seed_ = state.seed;
  forks_ = state.forks;
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

}  // namespace smoother::util
