#include "smoother/sched/cluster_timeline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace smoother::sched {

ClusterTimeline::ClusterTimeline(std::size_t slots, util::Minutes step,
                                 std::size_t total_servers)
    : step_(step),
      total_servers_(total_servers),
      used_servers_(slots, 0),
      demand_(step, slots) {
  if (slots == 0)
    throw std::invalid_argument("ClusterTimeline: zero-slot horizon");
  if (total_servers == 0)
    throw std::invalid_argument("ClusterTimeline: zero-server cluster");
  if (step <= util::Minutes{0.0})
    throw std::invalid_argument("ClusterTimeline: step must be positive");
}

std::size_t ClusterTimeline::slot_of(util::Minutes t) const {
  if (t < util::Minutes{0.0})
    throw std::invalid_argument("ClusterTimeline::slot_of: negative time");
  const auto idx = static_cast<std::size_t>(t.value() / step_.value());
  return std::min(idx, slots() - 1);
}

std::size_t ClusterTimeline::slots_for(util::Minutes runtime) const {
  if (runtime <= util::Minutes{0.0}) return 0;
  return static_cast<std::size_t>(
      std::ceil(runtime.value() / step_.value() - 1e-9));
}

std::size_t ClusterTimeline::free_servers(std::size_t slot) const {
  if (slot >= slots()) throw std::out_of_range("ClusterTimeline::free_servers");
  return total_servers_ - used_servers_[slot];
}

bool ClusterTimeline::can_place(std::size_t start_slot, std::size_t count,
                                std::size_t servers) const {
  if (servers > total_servers_) return false;
  if (start_slot >= slots()) return false;
  const std::size_t end = std::min(start_slot + count, slots());
  for (std::size_t s = start_slot; s < end; ++s)
    if (used_servers_[s] + servers > total_servers_) return false;
  return true;
}

std::size_t ClusterTimeline::earliest_fit(std::size_t from, std::size_t count,
                                          std::size_t servers) const {
  for (std::size_t start = from; start < slots(); ++start)
    if (can_place(start, count, servers)) return start;
  return slots();
}

void ClusterTimeline::place(std::size_t start_slot, std::size_t count,
                            std::size_t servers, util::Kilowatts power) {
  if (!can_place(start_slot, count, servers))
    throw std::logic_error("ClusterTimeline::place: capacity exceeded");
  const std::size_t end = std::min(start_slot + count, slots());
  for (std::size_t s = start_slot; s < end; ++s) {
    used_servers_[s] += servers;
    demand_[s] += power.value();
  }
}

std::size_t ClusterTimeline::used_servers(std::size_t slot) const {
  if (slot >= slots()) throw std::out_of_range("ClusterTimeline::used_servers");
  return used_servers_[slot];
}

}  // namespace smoother::sched
