#include "smoother/sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace smoother::sched {

void Job::validate() const {
  if (runtime <= util::Minutes{0.0})
    throw std::invalid_argument("Job: runtime must be positive");
  if (servers == 0) throw std::invalid_argument("Job: needs >= 1 server");
  if (cpu_utilization < 0.0 || cpu_utilization > 1.0)
    throw std::invalid_argument("Job: utilization outside [0,1]");
  if (arrival < util::Minutes{0.0})
    throw std::invalid_argument("Job: negative arrival");
  if (power < util::Kilowatts{0.0})
    throw std::invalid_argument("Job: negative power");
}

void ScheduleRequest::validate() const {
  if (renewable.empty())
    throw std::invalid_argument("ScheduleRequest: empty renewable series");
  if (total_servers == 0)
    throw std::invalid_argument("ScheduleRequest: zero-server cluster");
  for (const Job& job : jobs) {
    job.validate();
    if (job.servers > total_servers)
      throw std::invalid_argument("ScheduleRequest: job larger than cluster");
  }
}

namespace {

/// First slot whose window starts at or after t.
std::size_t first_slot_at_or_after(const ClusterTimeline& timeline,
                                   util::Minutes t) {
  if (t <= util::Minutes{0.0}) return 0;
  const double raw = t.value() / timeline.step().value();
  return static_cast<std::size_t>(std::ceil(raw - 1e-9));
}

}  // namespace

std::vector<Placement> place_greedy_in_order(std::vector<Job> order,
                                             ClusterTimeline& timeline) {
  std::vector<Placement> placements;
  placements.reserve(order.size());
  for (const Job& job : order) {
    const std::size_t duration = timeline.slots_for(job.runtime);
    const std::size_t from = first_slot_at_or_after(timeline, job.arrival);
    const std::size_t start =
        from >= timeline.slots()
            ? timeline.slots()
            : timeline.earliest_fit(from, duration, job.servers);
    Placement placement;
    placement.job_id = job.id;
    if (start >= timeline.slots()) {
      // Never fits inside the horizon: record as missed, schedule nothing.
      placement.start = timeline.horizon();
      placement.finish = placement.start + job.runtime;
      placement.met_deadline = false;
    } else {
      timeline.place(start, duration, job.servers, job.power);
      placement.start = util::Minutes{timeline.step().value() *
                                      static_cast<double>(start)};
      placement.finish = placement.start + job.runtime;
      placement.met_deadline = placement.finish <= job.deadline;
    }
    placements.push_back(placement);
  }
  return placements;
}

ScheduleResult finalize_schedule(const ScheduleRequest& request,
                                 const ClusterTimeline& timeline,
                                 std::vector<Placement> placements) {
  ScheduleResult result;
  result.demand = timeline.demand();

  const util::TimeSeries& renewable = request.renewable;
  const double baseline = request.baseline_power.value();
  util::TimeSeries used_by_workload(renewable.step(), renewable.size());
  util::TimeSeries residual(renewable.step(), renewable.size());
  for (std::size_t i = 0; i < renewable.size(); ++i) {
    const double after_baseline = std::max(renewable[i] - baseline, 0.0);
    const double used = std::min(result.demand[i], after_baseline);
    used_by_workload[i] = used;
    residual[i] = after_baseline - used;
  }
  result.residual_renewable = std::move(residual);

  result.outcome.placements = std::move(placements);
  result.outcome.total_energy = result.demand.total_energy();
  result.outcome.renewable_energy_used = used_by_workload.total_energy();
  result.outcome.deadline_misses = static_cast<std::size_t>(
      std::count_if(result.outcome.placements.begin(),
                    result.outcome.placements.end(),
                    [](const Placement& p) { return !p.met_deadline; }));
  return result;
}

ScheduleResult ImmediateScheduler::schedule(
    const ScheduleRequest& request) const {
  request.validate();
  ClusterTimeline timeline(request.renewable.size(), request.renewable.step(),
                           request.total_servers);
  std::vector<Job> order = request.jobs;
  std::stable_sort(order.begin(), order.end(),
                   [](const Job& a, const Job& b) {
                     return a.arrival < b.arrival;
                   });
  auto placements = place_greedy_in_order(std::move(order), timeline);
  return finalize_schedule(request, timeline, std::move(placements));
}

ScheduleResult EdfScheduler::schedule(const ScheduleRequest& request) const {
  request.validate();
  ClusterTimeline timeline(request.renewable.size(), request.renewable.step(),
                           request.total_servers);
  std::vector<Job> order = request.jobs;
  std::stable_sort(order.begin(), order.end(),
                   [](const Job& a, const Job& b) {
                     return a.deadline < b.deadline;
                   });
  auto placements = place_greedy_in_order(std::move(order), timeline);
  return finalize_schedule(request, timeline, std::move(placements));
}

}  // namespace smoother::sched
