// Scheduler interface shared by Active Delay and the baselines.
//
// A scheduler receives a batch of jobs and the renewable power series over
// the horizon, decides a start time for each job subject to cluster
// capacity, and reports the resulting demand series plus renewable-energy
// accounting. The renewable series and the schedule share one slot grid.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "smoother/sched/cluster_timeline.hpp"
#include "smoother/sched/job.hpp"
#include "smoother/util/time_series.hpp"

namespace smoother::sched {

/// Input to a scheduling run.
struct ScheduleRequest {
  std::vector<Job> jobs;
  util::TimeSeries renewable;   ///< kW per slot; defines the slot grid
  std::size_t total_servers = 11000;

  /// Constant non-workload demand (idle fleet + cooling floor) that also
  /// consumes renewable power before jobs do. Zero by default, i.e. the
  /// paper's workload-vs-supply accounting.
  util::Kilowatts baseline_power{0.0};

  /// Validates jobs and the grid; throws std::invalid_argument.
  void validate() const;
};

/// Output of a scheduling run.
struct ScheduleResult {
  ScheduleOutcome outcome;
  util::TimeSeries demand;  ///< workload power per slot (kW), excl. baseline

  /// Renewable power left after the baseline and scheduled demand (kW).
  util::TimeSeries residual_renewable;
};

/// Abstract scheduler.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Human-readable policy name ("immediate", "edf", "active-delay").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Produces a schedule; implementations must respect cluster capacity and
  /// never start a job before its arrival.
  [[nodiscard]] virtual ScheduleResult schedule(
      const ScheduleRequest& request) const = 0;
};

/// Starts every job as early as possible (at arrival, or at the first later
/// slot with free servers). This is the paper's "without Active Delay"
/// behaviour (Fig. 8a).
class ImmediateScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "immediate"; }
  [[nodiscard]] ScheduleResult schedule(
      const ScheduleRequest& request) const override;
};

/// Earliest-deadline-first: jobs are placed in deadline order, each as early
/// as possible. A classical baseline for deadline-constrained batch work.
class EdfScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "edf"; }
  [[nodiscard]] ScheduleResult schedule(
      const ScheduleRequest& request) const override;
};

/// Shared post-placement accounting: fills demand/residual series and the
/// outcome totals from a populated timeline + placements. Renewable first
/// feeds the baseline, then the workload (elementwise min), matching the
/// paper's utilization metric.
[[nodiscard]] ScheduleResult finalize_schedule(
    const ScheduleRequest& request, const ClusterTimeline& timeline,
    std::vector<Placement> placements);

/// Convenience: places each job of `order` at its earliest feasible start
/// and returns the placements. Jobs that can never fit are started at the
/// horizon end slot (counted as deadline misses by finalize_schedule).
[[nodiscard]] std::vector<Placement> place_greedy_in_order(
    std::vector<Job> order, ClusterTimeline& timeline);

}  // namespace smoother::sched
