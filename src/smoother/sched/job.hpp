// The deferrable-workload job model (paper Section III-D).
//
// A job arrives at some time, needs a number of servers at some CPU
// utilization for a runtime, and must finish by a soft deadline. Active
// Delay's freedom is the job's slack time:
//   slack(t) = deadline - runtime - t        (Algorithm 1 line 7)
// A job with zero or negative slack is effectively real-time and must start
// immediately.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "smoother/util/units.hpp"

namespace smoother::sched {

/// One schedulable unit of work.
struct Job {
  std::uint64_t id = 0;
  util::Minutes arrival{0.0};   ///< when the request enters the system
  util::Minutes runtime{0.0};   ///< execution length once started
  util::Minutes deadline{0.0};  ///< absolute soft deadline for completion
  std::size_t servers = 1;      ///< machines occupied while running
  double cpu_utilization = 1.0; ///< per-occupied-machine utilization [0,1]
  util::Kilowatts power{0.0};   ///< demand while running (calWorkloadPower)

  /// Slack available at time `now` (can be negative when late).
  [[nodiscard]] util::Minutes slack_at(util::Minutes now) const {
    return deadline - runtime - now;
  }

  /// True when the job can still be deferred at `now` (slack > 0).
  [[nodiscard]] bool deferrable_at(util::Minutes now) const {
    return slack_at(now) > util::Minutes{0.0};
  }

  /// Latest start that still meets the deadline.
  [[nodiscard]] util::Minutes latest_start() const {
    return deadline - runtime;
  }

  /// Total energy the job consumes over its runtime.
  [[nodiscard]] util::KilowattHours total_energy() const {
    return util::energy(power, runtime);
  }

  /// Validates invariants (positive runtime, deadline after arrival +
  /// runtime is *not* required — late jobs are legal — but runtime and
  /// servers must be positive and utilization in [0,1]).
  /// Throws std::invalid_argument on violation.
  void validate() const;
};

/// A scheduling decision: when the job actually starts.
struct Placement {
  std::uint64_t job_id = 0;
  util::Minutes start{0.0};
  util::Minutes finish{0.0};
  bool met_deadline = true;
  util::KilowattHours renewable_energy_used{0.0};
};

/// Summary of a full schedule.
struct ScheduleOutcome {
  std::vector<Placement> placements;
  util::KilowattHours total_energy{0.0};
  util::KilowattHours renewable_energy_used{0.0};
  std::size_t deadline_misses = 0;

  /// Fraction of generated renewable energy the schedule consumed, given
  /// the total generated amount.
  [[nodiscard]] double renewable_utilization(
      util::KilowattHours generated) const {
    if (generated <= util::KilowattHours{0.0}) return 0.0;
    return renewable_energy_used / generated;
  }
};

}  // namespace smoother::sched
