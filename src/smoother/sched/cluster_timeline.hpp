// Discrete-slot cluster occupancy and power timeline.
//
// All schedulers (the Active Delay core and the FIFO/EDF baselines) place
// jobs onto this shared structure: a horizon divided into fixed slots (one
// minute in the paper), a server-count capacity per slot, and the resulting
// aggregate power-demand series.
#pragma once

#include <cstddef>
#include <vector>

#include "smoother/sched/job.hpp"
#include "smoother/util/time_series.hpp"
#include "smoother/util/units.hpp"

namespace smoother::sched {

/// Occupancy and power bookkeeping over a fixed horizon.
class ClusterTimeline {
 public:
  /// `slots` windows of `step` minutes each on a cluster of `total_servers`.
  /// Throws std::invalid_argument for a zero-sized horizon or cluster.
  ClusterTimeline(std::size_t slots, util::Minutes step,
                  std::size_t total_servers);

  [[nodiscard]] std::size_t slots() const { return used_servers_.size(); }
  [[nodiscard]] util::Minutes step() const { return step_; }
  [[nodiscard]] std::size_t total_servers() const { return total_servers_; }

  /// Duration of the whole horizon.
  [[nodiscard]] util::Minutes horizon() const {
    return util::Minutes{step_.value() * static_cast<double>(slots())};
  }

  /// Slot index containing time t (clamped to the last slot when t is at or
  /// beyond the horizon end; negative t throws).
  [[nodiscard]] std::size_t slot_of(util::Minutes t) const;

  /// Number of slots a runtime occupies (ceiling).
  [[nodiscard]] std::size_t slots_for(util::Minutes runtime) const;

  /// Free servers in one slot.
  [[nodiscard]] std::size_t free_servers(std::size_t slot) const;

  /// True when `servers` machines are free over [start, start+count) slots.
  /// Slot ranges reaching past the horizon are checked only up to the end.
  [[nodiscard]] bool can_place(std::size_t start_slot, std::size_t count,
                               std::size_t servers) const;

  /// Earliest slot >= `from` at which the job fits; returns slots() when it
  /// never fits within the horizon.
  [[nodiscard]] std::size_t earliest_fit(std::size_t from, std::size_t count,
                                         std::size_t servers) const;

  /// Reserves the servers and adds `power` to the demand series over
  /// [start, start+count) (truncated at the horizon). Throws
  /// std::logic_error when capacity would be exceeded.
  void place(std::size_t start_slot, std::size_t count, std::size_t servers,
             util::Kilowatts power);

  /// Aggregate power demand series accumulated from all placements (kW).
  [[nodiscard]] const util::TimeSeries& demand() const { return demand_; }

  /// Servers in use at a slot.
  [[nodiscard]] std::size_t used_servers(std::size_t slot) const;

 private:
  util::Minutes step_;
  std::size_t total_servers_;
  std::vector<std::size_t> used_servers_;
  util::TimeSeries demand_;
};

}  // namespace smoother::sched
