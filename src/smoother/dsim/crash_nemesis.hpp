// CrashNemesis: kill-and-recover fuzzing for the persistence engine.
//
// Each case runs the full PipelineSim with a PersistEngine attached, kills
// the event loop at a seeded-random point ("buggified" crash placement:
// anywhere in the executed-event sequence, so kills land mid-interval, on
// forecast updates, between commits), optionally tears the WAL by
// truncating it at a random byte offset — the on-disk shape a crash during
// an append leaves behind — then recovers from disk and resumes the run.
//
// The oracle is an uninterrupted reference run of the same (config, seed):
// the resumed run's records digest must be byte-identical to the
// reference's remaining lines (InvariantChecker::check_replay does the
// comparison), and the resumed run must finish with zero invariant
// violations. Any divergence means recovery lost, duplicated, or mutated
// committed state.
//
// The pipeline config must have solver_warm_start disabled: warm-start
// iterates are deliberately not checkpointed (DESIGN.md §4i), so with them
// enabled a recovered run would legitimately differ from the reference in
// per-interval solver iteration counts — a modeling choice, not a bug, and
// exactly what this nemesis must not report.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "smoother/dsim/pipeline_sim.hpp"
#include "smoother/persist/engine.hpp"

namespace smoother::dsim {

struct CrashNemesisConfig {
  /// Pipeline under test. solver_warm_start must be false (see above).
  PipelineSimConfig pipeline;

  /// Crash cases per run().
  std::size_t crash_points = 50;

  /// Fraction of cases that also tear the WAL tail at a random byte offset
  /// after the kill.
  double torn_write_fraction = 0.3;

  /// Template for each case's engine; `directory` is the parent under which
  /// per-case directories (point-<i>) are created and recreated.
  persist::PersistConfig persist;

  /// Throws std::invalid_argument on bad values (including an enabled
  /// solver warm start).
  void validate() const;
};

/// One crash case's outcome.
struct CrashOutcome {
  std::uint64_t crash_after_events = 0;
  bool torn = false;                     ///< WAL tail truncated after kill
  bool recovered = false;                ///< durable state found on disk
  bool from_snapshot = false;
  std::uint64_t committed_intervals = 0; ///< durable at recovery
  std::size_t wal_records_replayed = 0;
  std::uint64_t wal_bytes_truncated = 0; ///< torn/corrupt tail removed
  bool identical = false;  ///< resumed digest == reference remainder
  bool clean = false;      ///< resumed run had zero invariant violations
};

struct CrashNemesisReport {
  std::size_t points = 0;
  std::size_t recovered = 0;    ///< cases that found durable state
  std::size_t cold_starts = 0;  ///< crash landed before the first commit
  std::size_t torn = 0;
  std::size_t identical = 0;
  std::size_t clean = 0;
  std::size_t reference_intervals = 0;
  std::vector<CrashOutcome> outcomes;
  /// Empty when every case recovered byte-identically and violation-free;
  /// otherwise describes the first failing case.
  std::string first_failure;

  [[nodiscard]] bool ok() const { return first_failure.empty(); }
};

class CrashNemesis {
 public:
  /// Throws std::invalid_argument on bad config.
  CrashNemesis(CrashNemesisConfig config, std::uint64_t seed);

  /// Runs the reference, then every crash case. Crash placement, torn-write
  /// selection and tear offsets all derive from (seed, case index), so a
  /// failing case reproduces from the report alone.
  [[nodiscard]] CrashNemesisReport run();

 private:
  CrashNemesisConfig config_;
  std::uint64_t seed_;
};

}  // namespace smoother::dsim
