#include "smoother/dsim/crash_nemesis.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "smoother/dsim/invariants.hpp"
#include "smoother/util/format.hpp"
#include "smoother/util/rng.hpp"

namespace smoother::dsim {

namespace {

/// Rng::split stream for crash placement; distinct from every pipeline and
/// fuzzer stream of the same seed.
constexpr std::uint64_t kNemesisStream = 0xC2A54;

/// wal.bin header size (magic + u32 version); tear offsets stay at or past
/// it so the torn file still parses as a WAL with a damaged record tail.
constexpr std::uintmax_t kWalHeaderBytes = 8;

/// Splits a records digest into its per-interval lines.
std::vector<std::string> digest_lines(const std::string& digest) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < digest.size()) {
    const std::size_t end = digest.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(digest.substr(start));
      break;
    }
    lines.push_back(digest.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

}  // namespace

void CrashNemesisConfig::validate() const {
  pipeline.validate();
  if (pipeline.solver_warm_start)
    throw std::invalid_argument(
        "CrashNemesisConfig: solver_warm_start must be off — warm-start "
        "iterates are not checkpointed, so recovered runs legitimately "
        "diverge from the reference with it on");
  if (crash_points == 0)
    throw std::invalid_argument(
        "CrashNemesisConfig: need at least one crash point");
  if (!(torn_write_fraction >= 0.0 && torn_write_fraction <= 1.0))
    throw std::invalid_argument(
        "CrashNemesisConfig: torn fraction must be in [0,1]");
  persist.validate();
}

CrashNemesis::CrashNemesis(CrashNemesisConfig config, std::uint64_t seed)
    : config_(std::move(config)), seed_(seed) {
  config_.validate();
}

CrashNemesisReport CrashNemesis::run() {
  CrashNemesisReport report;
  report.points = config_.crash_points;

  PipelineSim sim(config_.pipeline, seed_);
  const TelemetryTape tape = sim.clean_tape();
  const PipelineSimResult reference = sim.run(tape);
  if (!reference.ok())
    throw std::runtime_error(
        "CrashNemesis: the uninterrupted reference run violates invariants; "
        "nothing to compare recovery against");
  report.reference_intervals = reference.intervals;
  const std::vector<std::string> ref_lines =
      digest_lines(reference.records_digest);

  for (std::size_t i = 0; i < config_.crash_points; ++i) {
    // Pure per-case stream: a failing case is reproducible from (seed, i).
    util::Rng rng = util::Rng(seed_).split(kNemesisStream).split(i);
    CrashOutcome outcome;
    const std::uint64_t span =
        reference.events_executed > 1
            ? static_cast<std::uint64_t>(reference.events_executed) - 1
            : 1;
    outcome.crash_after_events =
        1 + static_cast<std::uint64_t>(rng.uniform() *
                                       static_cast<double>(span));
    const bool want_torn = rng.uniform() < config_.torn_write_fraction;

    persist::PersistConfig engine_config = config_.persist;
    engine_config.directory =
        (std::filesystem::path(config_.persist.directory) /
         util::strfmt("point-%zu", i))
            .string();
    std::filesystem::remove_all(engine_config.directory);

    {
      persist::PersistEngine engine(engine_config);
      SimControls controls;
      controls.engine = &engine;
      controls.halt_after_events = outcome.crash_after_events;
      PipelineSim crashed(config_.pipeline, seed_);
      static_cast<void>(crashed.run(tape, controls));
    }

    if (want_torn) {
      // Tear mid-append: cut the WAL at a random byte offset past the
      // header, exactly what a crash during a write leaves behind.
      const std::string wal =
          (std::filesystem::path(engine_config.directory) / "wal.bin")
              .string();
      std::error_code ec;
      const std::uintmax_t size = std::filesystem::file_size(wal, ec);
      if (!ec && size > kWalHeaderBytes) {
        const std::uintmax_t cut =
            kWalHeaderBytes +
            static_cast<std::uintmax_t>(
                rng.uniform() *
                static_cast<double>(size - kWalHeaderBytes));
        std::filesystem::resize_file(wal, cut, ec);
        if (!ec) {
          outcome.torn = true;
          ++report.torn;
        }
      }
    }

    persist::PersistEngine engine(engine_config);
    const persist::RecoveredState recovered = engine.recover();
    outcome.recovered = recovered.found;
    outcome.from_snapshot = recovered.from_snapshot;
    outcome.wal_records_replayed = recovered.wal_records_replayed;
    outcome.wal_bytes_truncated = recovered.wal_bytes_truncated;
    if (recovered.found) {
      outcome.committed_intervals =
          peek_checkpoint(recovered.state).committed_intervals;
      ++report.recovered;
    } else {
      ++report.cold_starts;
    }

    SimControls controls;
    controls.engine = &engine;
    if (recovered.found) controls.resume_state = &recovered.state;
    PipelineSim resumed_sim(config_.pipeline, seed_);
    const PipelineSimResult resumed = resumed_sim.run(tape, controls);

    std::string expected;
    for (std::size_t k =
             static_cast<std::size_t>(outcome.committed_intervals);
         k < ref_lines.size(); ++k) {
      expected += ref_lines[k];
      expected += '\n';
    }
    const std::optional<std::string> diff =
        InvariantChecker::check_replay(expected, resumed.records_digest);
    outcome.identical = !diff.has_value();
    outcome.clean = resumed.ok();
    if (outcome.identical) ++report.identical;
    if (outcome.clean) ++report.clean;
    if (report.first_failure.empty() && (!outcome.identical || !outcome.clean))
      report.first_failure = util::strfmt(
          "case %zu (crash after %llu events%s, %llu committed): %s", i,
          static_cast<unsigned long long>(outcome.crash_after_events),
          outcome.torn ? ", torn WAL" : "",
          static_cast<unsigned long long>(outcome.committed_intervals),
          !outcome.identical ? diff->c_str() : "invariant violations");
    report.outcomes.push_back(outcome);
  }
  return report;
}

}  // namespace smoother::dsim
