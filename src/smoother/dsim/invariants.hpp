// Invariants the simulated online pipeline must never violate.
//
// The checker watches one PipelineSim run interval by interval and records
// violations instead of throwing — a fuzz campaign wants every violation a
// mutated trace can produce, not just the first. The per-interval physics:
//
//   * SoC corridor: the battery's state of charge stays inside
//     [min_soc, max_soc] (modulo floating-point dust);
//   * cell-level energy conservation: the change in stored energy equals
//     cell charge minus cell discharge over the interval;
//   * terminal-level energy conservation: the energy the delivered supply
//     gained over the accepted telemetry equals what the battery exchanged
//     at its terminals (discharge * eff_d - charge / eff_c);
//   * stream integrity: delivered samples are finite and non-negative and
//     the output advances by exactly one interval per interval.
//
// Two cross-run invariants are exposed as statics: monotone fallback in
// the injected fault rate (fault sets are nested by construction, so the
// measured curve must be non-decreasing) and byte-identical replay from
// the same seed.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "smoother/battery/battery.hpp"
#include "smoother/util/time_series.hpp"
#include "smoother/util/units.hpp"

namespace smoother::dsim {

struct InvariantViolation {
  std::string invariant;  ///< e.g. "soc-corridor"
  std::string detail;
  double sim_time_minutes = 0.0;
  std::size_t interval = 0;
};

/// Snapshot of the battery's cumulative counters (taken before and after
/// each interval).
struct BatterySnapshot {
  double energy_kwh = 0.0;
  double total_charged_kwh = 0.0;
  double total_discharged_kwh = 0.0;

  static BatterySnapshot of(const battery::Battery& battery) {
    return {battery.energy().value(), battery.total_charged().value(),
            battery.total_discharged().value()};
  }
};

class InvariantChecker {
 public:
  /// `tolerance_kwh` absorbs floating-point dust in the energy balances
  /// (scaled internally by the interval's energy magnitude).
  explicit InvariantChecker(double tolerance_kwh = 1e-6)
      : tolerance_kwh_(tolerance_kwh) {}

  /// Checks one completed interval. `accepted` holds the sanitized samples
  /// (kW) the smoother actually planned on — the shadow TelemetryGuard's
  /// view of the raw stream — and `delivered` the samples (kW) appended to
  /// the output; `step_minutes` is their shared sample step.
  void check_interval(std::size_t interval, double sim_time_minutes,
                      const battery::Battery& battery,
                      const BatterySnapshot& before, double step_minutes,
                      const std::vector<double>& accepted,
                      const std::vector<double>& delivered);

  /// Records a free-form violation (crash containment, contract breaches).
  void record(std::string invariant, std::string detail,
              double sim_time_minutes, std::size_t interval);

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::size_t intervals_checked() const {
    return intervals_checked_;
  }

  /// Cross-run invariant: fallback rates measured at non-decreasing
  /// injected fault rates (same seed) must be non-decreasing — the
  /// injector's fault sets are nested in the rate. Returns the description
  /// of the first decrease, or nullopt when monotone.
  static std::optional<std::string> check_monotone_fallback(
      const std::vector<std::pair<double, double>>& rate_to_fallback);

  /// Cross-run invariant: two runs of the same seed must be byte-identical
  /// witnesses (event trace + records digest). Returns the description of
  /// the first difference, or nullopt when identical.
  static std::optional<std::string> check_replay(const std::string& first,
                                                 const std::string& second);

 private:
  double tolerance_kwh_;
  std::size_t intervals_checked_ = 0;
  std::vector<InvariantViolation> violations_;
};

}  // namespace smoother::dsim
