#include "smoother/dsim/pipeline_sim.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <utility>

#include "smoother/battery/battery.hpp"
#include "smoother/obs/metrics.hpp"
#include "smoother/obs/trace.hpp"
#include "smoother/persist/state.hpp"
#include "smoother/power/turbine.hpp"
#include "smoother/resilience/telemetry_guard.hpp"
#include "smoother/util/format.hpp"
#include "smoother/util/rng.hpp"

namespace smoother::dsim {

namespace {

// Stream ids for Rng::split derivation. The EventLoop owns 0 (buggify) and
// 1 (callback rng) of the same seed, so the pipeline's streams start high.
constexpr std::uint64_t kSupplyStream = 10;
constexpr std::uint64_t kForecastStream = 11;
constexpr std::uint64_t kInjectorStream = 12;

}  // namespace

void PipelineSimConfig::validate() const {
  if (duration <= util::Minutes{0.0})
    throw std::invalid_argument("PipelineSimConfig: duration must be > 0");
  if (sample_step <= util::Minutes{0.0})
    throw std::invalid_argument("PipelineSimConfig: step must be > 0");
  if (rated_power <= util::Kilowatts{0.0})
    throw std::invalid_argument("PipelineSimConfig: rated power must be > 0");
  if (battery_rate_fraction <= 0.0)
    throw std::invalid_argument(
        "PipelineSimConfig: battery rate fraction must be > 0");
  if (battery_headroom < 1.0)
    throw std::invalid_argument(
        "PipelineSimConfig: battery headroom must be >= 1");
  if (forecast_error_sd < 0.0)
    throw std::invalid_argument(
        "PipelineSimConfig: forecast error sd must be >= 0");
  if (invariant_tolerance_kwh <= 0.0)
    throw std::invalid_argument(
        "PipelineSimConfig: invariant tolerance must be > 0");
  site.validate();
  faults.validate();
  buggify.validate();
  // Clean runs rely on forecast updates landing before their interval
  // boundary and on telemetry arriving in order; both hold as long as the
  // jitter stays below one sample step.
  if (buggify.enabled && buggify.max_delay_minutes >= sample_step.value())
    throw std::invalid_argument(
        "PipelineSimConfig: buggified delay must stay below the sample step");
}

PipelineSim::PipelineSim(PipelineSimConfig config, std::uint64_t seed)
    : config_(std::move(config)), seed_(seed) {
  config_.validate();
}

TelemetryTape PipelineSim::clean_tape() const {
  const trace::WindSpeedModel model(config_.site);
  const util::TimeSeries supply =
      power::TurbineCurve::enercon_e48().power_series(model.generate(
          config_.duration, config_.sample_step,
          util::Rng::derive_stream_seed(seed_, kSupplyStream)));
  TelemetryTape tape;
  tape.reserve(supply.size());
  for (std::size_t i = 0; i < supply.size(); ++i)
    tape.push_back(TelemetryEvent{
        config_.sample_step.value() * static_cast<double>(i), false,
        supply[i]});
  return tape;
}

CheckpointInfo peek_checkpoint(std::string_view payload) {
  persist::Reader reader(payload);
  CheckpointInfo info;
  info.committed_intervals = reader.u64();
  info.samples_consumed = reader.u64();
  info.soc_fraction = reader.f64();
  return info;
}

PipelineSimResult PipelineSim::run() { return run(clean_tape()); }

PipelineSimResult PipelineSim::run(const TelemetryTape& tape) {
  return run(tape, SimControls{});
}

PipelineSimResult PipelineSim::run(const TelemetryTape& tape,
                                   const SimControls& controls) {
  obs::MetricsRegistry* metrics = obs::global_metrics();
  obs::Span span(obs::global_tracer(), "dsim-run");

  PipelineSimResult result;
  result.seed = seed_;

  EventLoop loop(seed_, config_.buggify);
  loop.set_record_trace(config_.record_trace);
  if (controls.halt_after_events > 0)
    loop.set_halt_after_events(controls.halt_after_events);

  // --- the pipeline under test -------------------------------------------
  resilience::FaultInjector injector(
      config_.faults, util::Rng::derive_stream_seed(seed_, kInjectorStream));

  core::OnlineSmootherConfig smoother_config;
  smoother_config.rated_power = config_.rated_power;
  smoother_config.sample_step = config_.sample_step;
  smoother_config.warmup_intervals = config_.warmup_intervals;
  smoother_config.history_intervals = config_.history_intervals;
  smoother_config.recovery_intervals = config_.recovery_intervals;
  smoother_config.flexible_smoothing.warm_start = config_.solver_warm_start;
  const std::size_t points =
      smoother_config.flexible_smoothing.points_per_interval;

  const battery::BatterySpec spec = battery::spec_for_max_rate(
      config_.rated_power * config_.battery_rate_fraction,
      config_.sample_step, config_.battery_headroom);

  // Forecast store: updates land here as events; the oracle reads it. A
  // missing entry (update skewed past the boundary by a fuzz mutation)
  // surfaces as an oracle failure, never a crash.
  const std::size_t num_intervals = points == 0 ? 0 : tape.size() / points;
  std::vector<std::optional<std::vector<double>>> forecast_store(
      num_intervals);

  core::OnlineSmoother::Hooks hooks;
  hooks.forecast_oracle = injector.wrap_oracle(
      [&forecast_store](std::size_t interval) -> std::vector<double> {
        if (interval >= forecast_store.size() || !forecast_store[interval])
          throw std::runtime_error("forecast unavailable for interval " +
                                   std::to_string(interval));
        return *forecast_store[interval];
      });
  hooks.battery_monitor = [&injector](std::size_t interval) {
    return injector.battery_available(interval);
  };
  solver::QpSettings crippled = smoother_config.flexible_smoothing.qp;
  crippled.max_iterations = 0;
  hooks.solver_settings =
      [&injector, crippled](
          std::size_t interval) -> std::optional<solver::QpSettings> {
    if (injector.solver_should_fail(interval)) return crippled;
    return std::nullopt;
  };

  core::OnlineSmoother smoother(
      smoother_config, battery::Battery(injector.faded_spec(spec)),
      std::move(hooks));

  // --- the audit ---------------------------------------------------------
  InvariantChecker checker(config_.invariant_tolerance_kwh);
  // Shadow guard: bit-identical to the smoother's internal one (same
  // config, same call sequence), so the checker knows the accepted value
  // of every pushed sample without reaching into the smoother.
  resilience::TelemetryGuardConfig shadow_config =
      smoother_config.telemetry_guard;
  shadow_config.rated_power_kw = config_.rated_power.value();
  resilience::TelemetryGuard shadow_guard(shadow_config);

  // --- resume: restore the checkpoint, mark the consumed tape prefix -----
  std::uint64_t sample_base = 0;
  std::vector<char> consumed(tape.size(), 0);
  if (controls.resume_state != nullptr) {
    persist::Reader reader(*controls.resume_state);
    const std::uint64_t committed = reader.u64();
    sample_base = reader.u64();
    // SoC preamble: diagnostic only; the battery state below is
    // authoritative.
    static_cast<void>(reader.f64());
    const double injector_last_clean = reader.f64();
    const double guard_last_good = reader.f64();
    persist::restore_state(reader, smoother);
    reader.expect_done();
    try {
      injector.restore_last_clean(injector_last_clean);
      shadow_guard.restore_last_good(guard_last_good);
    } catch (const std::invalid_argument& e) {
      throw persist::PersistError(persist::ErrorKind::kCorrupt, e.what());
    }
    if (committed != smoother.intervals_completed())
      throw persist::PersistError(
          persist::ErrorKind::kCorrupt,
          "checkpoint preamble and smoother state disagree on the interval "
          "cursor");
    // The consumed events are the first sample_base in execution order —
    // the stable sort of the tape by arrival time (see SimControls).
    std::vector<std::size_t> order(tape.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&tape](std::size_t a, std::size_t b) {
                       return tape[a].time_minutes < tape[b].time_minutes;
                     });
    const std::size_t cut = std::min(
        static_cast<std::size_t>(sample_base), order.size());
    for (std::size_t j = 0; j < cut; ++j) consumed[order[j]] = 1;
  }

  std::vector<double> accepted;
  accepted.reserve(points);
  BatterySnapshot battery_before = BatterySnapshot::of(smoother.battery());

  // Checkpoint scratch, reused across intervals so the per-interval persist
  // path stays allocation-free (the macro_recovery overhead gate).
  persist::Writer checkpoint_writer;
  checkpoint_writer.reserve(1024);
  core::OnlineSmoother::StreamState checkpoint_state;

  const auto on_record = [&](const core::OnlineIntervalRecord& record) {
    const util::TimeSeries& output = smoother.output();
    std::vector<double> delivered;
    if (output.size() >= points) {
      delivered.reserve(points);
      for (std::size_t i = output.size() - points; i < output.size(); ++i)
        delivered.push_back(output[i]);
    }
    checker.check_interval(record.index, loop.now().value(),
                           smoother.battery(), battery_before,
                           config_.sample_step.value(), accepted, delivered);
    battery_before = BatterySnapshot::of(smoother.battery());
    accepted.clear();
    ++result.intervals;
    if (record.smoothed) ++result.smoothed_intervals;
    result.records_digest += util::strfmt(
        "i=%zu region=%s smoothed=%d warmup=%d degraded=%d fallback=%s "
        "cfvar=%.12e vb=%.12e va=%.12e iters=%zu\n",
        record.index, core::to_string(record.region).c_str(),
        record.smoothed ? 1 : 0, record.warmup ? 1 : 0,
        record.degraded ? 1 : 0,
        resilience::to_string(record.fallback).c_str(), record.cf_variance,
        record.variance_before, record.variance_after,
        record.solver_iterations);
    if (controls.engine != nullptr) {
      checkpoint_writer.clear();  // reused across intervals: one allocation
      checkpoint_writer.u64(smoother.intervals_completed());
      checkpoint_writer.u64(sample_base + result.samples);
      checkpoint_writer.f64(smoother.battery().soc_fraction());
      checkpoint_writer.f64(injector.last_clean_kw());
      checkpoint_writer.f64(shadow_guard.last_good_kw());
      smoother.export_state_into(checkpoint_state);
      persist::save_state(checkpoint_writer, checkpoint_state);
      controls.engine->append(checkpoint_writer.bytes());
    }
  };

  // --- wire the tape and forecast updates as events ----------------------
  for (std::size_t k = 0; k < num_intervals; ++k) {
    // The forecast for interval k is needed when its last sample arrives;
    // publishing at the interval's first-sample time leaves m-1 steps of
    // margin, so clean runs never plan on a missing forecast.
    const double at =
        config_.sample_step.value() * static_cast<double>(k * points);
    loop.schedule_at(
        util::Minutes{at}, util::strfmt("forecast-update k=%zu", k),
        [this, &forecast_store, &tape, k, points]() {
          util::Rng noise =
              util::Rng(seed_).split(kForecastStream).split(k);
          std::vector<double> predicted(points);
          for (std::size_t j = 0; j < points; ++j) {
            const TelemetryEvent& truth = tape[k * points + j];
            const double clean = truth.missing ? 0.0 : truth.value_kw;
            const double base = std::isfinite(clean) ? clean : 0.0;
            const double noisy =
                config_.forecast_error_sd > 0.0
                    ? base * (1.0 +
                              config_.forecast_error_sd * noise.normal())
                    : base;
            predicted[j] = std::max(noisy, 0.0);
          }
          forecast_store[k] = std::move(predicted);
        });
  }

  for (std::size_t i = 0; i < tape.size(); ++i) {
    if (consumed[i] != 0) continue;
    loop.schedule_at(
        util::Minutes{tape[i].time_minutes},
        util::strfmt("telemetry i=%zu%s", i,
                     tape[i].missing ? " missing" : ""),
        [&, i]() {
          ++result.samples;
          std::optional<core::OnlineIntervalRecord> record;
          try {
            if (tape[i].missing) {
              accepted.push_back(
                  std::max(shadow_guard.fill_gap().value_kw, 0.0));
              record = smoother.push_missing();
            } else {
              const double wire =
                  injector.corrupt_sample(i, tape[i].value_kw);
              accepted.push_back(
                  std::max(shadow_guard.sanitize(wire).value_kw, 0.0));
              record = smoother.push(wire);
            }
          } catch (const std::exception& e) {
            checker.record("push-no-throw", e.what(), loop.now().value(),
                           result.intervals);
            accepted.clear();
            return;
          } catch (...) {
            checker.record("push-no-throw", "non-exception thrown",
                           loop.now().value(), result.intervals);
            accepted.clear();
            return;
          }
          if (record) on_record(*record);
        });
  }

  // --- run to completion --------------------------------------------------
  loop.run();

  result.events_executed = loop.events_executed();
  result.sim_minutes = loop.now().value();
  result.health = smoother.health();
  result.violations = checker.violations();
  result.final_soc = smoother.battery().soc_fraction();
  for (std::size_t i = 0; i < smoother.output().size(); ++i)
    result.output_checksum += smoother.output()[i];
  if (config_.record_trace) {
    std::string trace;
    for (const std::string& line : loop.trace()) {
      trace += line;
      trace += '\n';
    }
    result.event_trace = std::move(trace);
  }

  if (metrics != nullptr) {
    metrics->counter("dsim.runs").add(1);
    metrics->counter("dsim.events").add(result.events_executed);
    metrics->counter("dsim.samples").add(result.samples);
    metrics->counter("dsim.intervals").add(result.intervals);
    if (!result.violations.empty())
      metrics->counter("dsim.violations").add(result.violations.size());
    metrics->gauge("dsim.sim_minutes").set(result.sim_minutes);
  }
  span.field("seed", result.seed)
      .field("events", static_cast<std::uint64_t>(result.events_executed))
      .field("intervals", static_cast<std::uint64_t>(result.intervals))
      .field("violations",
             static_cast<std::uint64_t>(result.violations.size()))
      .field("sim_minutes", result.sim_minutes);

  return result;
}

}  // namespace smoother::dsim
