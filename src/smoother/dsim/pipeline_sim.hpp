// PipelineSim: the full online smoothing pipeline on the deterministic
// event loop.
//
// Everything a deployed OnlineSmoother interacts with becomes a timed
// event: telemetry samples arrive one by one (with buggified scheduling
// jitter, so nearby arrivals can swap order exactly as they would across a
// loaded collector), forecast updates land shortly before each interval
// boundary and fill the store the forecast oracle reads, the
// resilience::FaultInjector corrupts samples / gates the battery monitor /
// wraps the oracle / cripples the solver as the nemesis, and every
// completed interval is audited by the InvariantChecker against the SoC
// corridor and both energy-conservation balances.
//
// The whole run is a pure function of (config, seed): the event trace, the
// interval records, the delivered output and every violation reproduce
// byte-identically — which is what makes a failing fuzz case a one-line
// (seed, mutation) reproducer. Years of 5-minute telemetry simulate in
// seconds because virtual time is free (see bench/macro_dsim).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "smoother/core/online.hpp"
#include "smoother/dsim/event_loop.hpp"
#include "smoother/dsim/invariants.hpp"
#include "smoother/persist/engine.hpp"
#include "smoother/resilience/fault_injector.hpp"
#include "smoother/trace/wind_speed_model.hpp"
#include "smoother/util/time_series.hpp"
#include "smoother/util/units.hpp"

namespace smoother::dsim {

/// One telemetry arrival on the wire. The fuzzer mutates tapes: values
/// spike or go NaN, samples go missing (gaps), arrival times skew or swap.
struct TelemetryEvent {
  double time_minutes = 0.0;  ///< nominal arrival time
  bool missing = false;       ///< telemetry gap: reported via push_missing
  double value_kw = 0.0;      ///< raw wire value (may be NaN / corrupt)
};
using TelemetryTape = std::vector<TelemetryEvent>;

struct PipelineSimConfig {
  /// Simulated span; the tape length is duration / sample_step.
  util::Minutes duration = util::days(30.0);
  util::Minutes sample_step = util::kFiveMinutes;

  /// Supply model: a synthetic wind site through the E48 turbine curve.
  trace::WindSiteParams site = trace::WindSitePresets::texas_10();
  util::Kilowatts rated_power{800.0};

  /// Battery sizing: max rate as a fraction of rated power, capacity
  /// headroom over the one-step paper sizing.
  double battery_rate_fraction = 0.5;
  double battery_headroom = 2.0;

  /// Streaming smoother knobs (warmup kept short so a month of simulated
  /// time exercises the planned path, not just threshold learning).
  std::size_t warmup_intervals = 4;
  std::size_t history_intervals = 48;
  std::size_t recovery_intervals = 3;

  /// Relative (fractional) gaussian error on the forecast store entries;
  /// 0 = perfect forecasts.
  double forecast_error_sd = 0.05;

  /// Seed ADMM solves from the previous interval's solution (the deployed
  /// default). Crash-recovery byte-identity tests turn this off: warm-start
  /// iterates are deliberately not checkpointed (DESIGN.md §4i), so a
  /// recovered run cold-starts a solve the uninterrupted run ran warm, and
  /// the per-interval iteration counts in the records digest would differ.
  bool solver_warm_start = true;

  /// The nemesis. All-zero rates = clean run.
  resilience::FaultInjectorConfig faults;

  /// Scheduling jitter. max_delay_minutes must stay below sample_step so
  /// clean runs keep forecast updates ahead of their interval boundaries.
  BuggifyConfig buggify;

  /// Record the executed-event trace (the replay witness). Soak runs that
  /// only need side effects can turn it off.
  bool record_trace = true;

  /// Invariant tolerance passed to the InvariantChecker.
  double invariant_tolerance_kwh = 1e-6;

  void validate() const;
};

/// Crash/recovery controls for one run(). Default-constructed it is the
/// plain uninterrupted run; the persistence nemesis combines the fields:
/// attach an engine to checkpoint, halt_after_events to kill, resume_state
/// to restart from a recovered checkpoint.
///
/// Resume identifies the already-consumed telemetry events by position in
/// the execution order, which it reconstructs as the stable sort of the
/// tape by arrival time. That reconstruction is exact when the tape's
/// arrival spacing exceeds the buggified jitter (any clean tape) or when
/// buggification is disabled (what the fuzzer's crash cases do for mutated
/// tapes); other combinations may resume from the wrong cut.
struct SimControls {
  /// When set, one checkpoint payload is appended per committed interval.
  persist::PersistEngine* engine = nullptr;

  /// When > 0, the event loop halts after executing this many events — the
  /// simulated process kill. The run returns whatever had committed.
  std::uint64_t halt_after_events = 0;

  /// When set, the run restores this checkpoint payload (as recovered from
  /// a PersistEngine) and replays only the unconsumed tail of the tape.
  const std::string* resume_state = nullptr;
};

/// The preamble of a checkpoint payload: enough to place the checkpoint on
/// the tape without decoding the full smoother state. tools/wal_dump.py
/// decodes exactly these fields, in this order, from each WAL record.
struct CheckpointInfo {
  std::uint64_t committed_intervals = 0;
  std::uint64_t samples_consumed = 0;
  double soc_fraction = 0.0;
};

/// Decodes the preamble of a checkpoint payload produced by a run with an
/// engine attached. Throws persist::PersistError on malformed input.
[[nodiscard]] CheckpointInfo peek_checkpoint(std::string_view payload);

struct PipelineSimResult {
  std::uint64_t seed = 0;
  std::size_t events_executed = 0;
  std::size_t samples = 0;
  std::size_t intervals = 0;
  std::size_t smoothed_intervals = 0;
  double sim_minutes = 0.0;
  resilience::HealthReport health;
  std::vector<InvariantViolation> violations;
  double output_checksum = 0.0;  ///< determinism witness over the output
  double final_soc = 0.0;

  /// Replay witnesses: the executed-event trace and a formatted digest of
  /// every interval record. Two runs of the same (config, seed) must match
  /// both byte for byte.
  std::string event_trace;
  std::string records_digest;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

class PipelineSim {
 public:
  /// Throws std::invalid_argument on bad config.
  PipelineSim(PipelineSimConfig config, std::uint64_t seed);

  /// The clean telemetry tape this (config, seed) would feed the pipeline:
  /// the deterministic supply trace at nominal arrival times. Fuzzers
  /// mutate a copy and pass it to run(tape).
  [[nodiscard]] TelemetryTape clean_tape() const;

  /// Runs the pipeline over its own clean tape.
  [[nodiscard]] PipelineSimResult run();

  /// Runs the pipeline over an arbitrary (possibly mutated) tape. Events
  /// are scheduled in tape order; out-of-order arrival times are honoured
  /// by the event loop's (time, seq) ordering. Exceptions escaping the
  /// pipeline are caught and recorded as "no-crash" violations, so a fuzz
  /// campaign collects them instead of dying.
  [[nodiscard]] PipelineSimResult run(const TelemetryTape& tape);

  /// Runs with crash/recovery controls: checkpointing one WAL record per
  /// committed interval, halting at a crash point, and/or resuming from a
  /// recovered checkpoint. run(tape) is exactly run(tape, {}) — a run with
  /// no controls takes the identical code path, draw for draw.
  [[nodiscard]] PipelineSimResult run(const TelemetryTape& tape,
                                      const SimControls& controls);

 private:
  PipelineSimConfig config_;
  std::uint64_t seed_;
};

}  // namespace smoother::dsim
