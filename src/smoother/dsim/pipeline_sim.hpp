// PipelineSim: the full online smoothing pipeline on the deterministic
// event loop.
//
// Everything a deployed OnlineSmoother interacts with becomes a timed
// event: telemetry samples arrive one by one (with buggified scheduling
// jitter, so nearby arrivals can swap order exactly as they would across a
// loaded collector), forecast updates land shortly before each interval
// boundary and fill the store the forecast oracle reads, the
// resilience::FaultInjector corrupts samples / gates the battery monitor /
// wraps the oracle / cripples the solver as the nemesis, and every
// completed interval is audited by the InvariantChecker against the SoC
// corridor and both energy-conservation balances.
//
// The whole run is a pure function of (config, seed): the event trace, the
// interval records, the delivered output and every violation reproduce
// byte-identically — which is what makes a failing fuzz case a one-line
// (seed, mutation) reproducer. Years of 5-minute telemetry simulate in
// seconds because virtual time is free (see bench/macro_dsim).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "smoother/core/online.hpp"
#include "smoother/dsim/event_loop.hpp"
#include "smoother/dsim/invariants.hpp"
#include "smoother/resilience/fault_injector.hpp"
#include "smoother/trace/wind_speed_model.hpp"
#include "smoother/util/time_series.hpp"
#include "smoother/util/units.hpp"

namespace smoother::dsim {

/// One telemetry arrival on the wire. The fuzzer mutates tapes: values
/// spike or go NaN, samples go missing (gaps), arrival times skew or swap.
struct TelemetryEvent {
  double time_minutes = 0.0;  ///< nominal arrival time
  bool missing = false;       ///< telemetry gap: reported via push_missing
  double value_kw = 0.0;      ///< raw wire value (may be NaN / corrupt)
};
using TelemetryTape = std::vector<TelemetryEvent>;

struct PipelineSimConfig {
  /// Simulated span; the tape length is duration / sample_step.
  util::Minutes duration = util::days(30.0);
  util::Minutes sample_step = util::kFiveMinutes;

  /// Supply model: a synthetic wind site through the E48 turbine curve.
  trace::WindSiteParams site = trace::WindSitePresets::texas_10();
  util::Kilowatts rated_power{800.0};

  /// Battery sizing: max rate as a fraction of rated power, capacity
  /// headroom over the one-step paper sizing.
  double battery_rate_fraction = 0.5;
  double battery_headroom = 2.0;

  /// Streaming smoother knobs (warmup kept short so a month of simulated
  /// time exercises the planned path, not just threshold learning).
  std::size_t warmup_intervals = 4;
  std::size_t history_intervals = 48;
  std::size_t recovery_intervals = 3;

  /// Relative (fractional) gaussian error on the forecast store entries;
  /// 0 = perfect forecasts.
  double forecast_error_sd = 0.05;

  /// The nemesis. All-zero rates = clean run.
  resilience::FaultInjectorConfig faults;

  /// Scheduling jitter. max_delay_minutes must stay below sample_step so
  /// clean runs keep forecast updates ahead of their interval boundaries.
  BuggifyConfig buggify;

  /// Record the executed-event trace (the replay witness). Soak runs that
  /// only need side effects can turn it off.
  bool record_trace = true;

  /// Invariant tolerance passed to the InvariantChecker.
  double invariant_tolerance_kwh = 1e-6;

  void validate() const;
};

struct PipelineSimResult {
  std::uint64_t seed = 0;
  std::size_t events_executed = 0;
  std::size_t samples = 0;
  std::size_t intervals = 0;
  std::size_t smoothed_intervals = 0;
  double sim_minutes = 0.0;
  resilience::HealthReport health;
  std::vector<InvariantViolation> violations;
  double output_checksum = 0.0;  ///< determinism witness over the output
  double final_soc = 0.0;

  /// Replay witnesses: the executed-event trace and a formatted digest of
  /// every interval record. Two runs of the same (config, seed) must match
  /// both byte for byte.
  std::string event_trace;
  std::string records_digest;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

class PipelineSim {
 public:
  /// Throws std::invalid_argument on bad config.
  PipelineSim(PipelineSimConfig config, std::uint64_t seed);

  /// The clean telemetry tape this (config, seed) would feed the pipeline:
  /// the deterministic supply trace at nominal arrival times. Fuzzers
  /// mutate a copy and pass it to run(tape).
  [[nodiscard]] TelemetryTape clean_tape() const;

  /// Runs the pipeline over its own clean tape.
  [[nodiscard]] PipelineSimResult run();

  /// Runs the pipeline over an arbitrary (possibly mutated) tape. Events
  /// are scheduled in tape order; out-of-order arrival times are honoured
  /// by the event loop's (time, seq) ordering. Exceptions escaping the
  /// pipeline are caught and recorded as "no-crash" violations, so a fuzz
  /// campaign collects them instead of dying.
  [[nodiscard]] PipelineSimResult run(const TelemetryTape& tape);

 private:
  PipelineSimConfig config_;
  std::uint64_t seed_;
};

}  // namespace smoother::dsim
