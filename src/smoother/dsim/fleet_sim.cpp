#include "smoother/dsim/fleet_sim.hpp"

#include <algorithm>
#include <bit>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "smoother/core/online.hpp"
#include "smoother/power/turbine.hpp"
#include "smoother/util/rng.hpp"
#include "smoother/util/time_series.hpp"

namespace smoother::dsim {

namespace {

// Stream ids for Rng::split derivation off the simulation seed. The
// EventLoop owns 0/1; PipelineSim uses 10-12; FleetSim starts at 20. The
// per-tenant streams hang off these via a second split keyed on the
// tenant id, so every tenant's weather and faults are independent AND
// reproducible in isolation.
constexpr std::uint64_t kSupplyStream = 20;
constexpr std::uint64_t kInjectorStream = 21;

std::uint64_t tenant_stream_seed(std::uint64_t seed, std::uint64_t stream,
                                 std::uint64_t tenant_id) {
  return util::Rng::derive_stream_seed(
      util::Rng::derive_stream_seed(seed, stream), tenant_id);
}

}  // namespace

void FleetSimConfig::validate() const {
  if (tenants == 0)
    throw std::invalid_argument("FleetSimConfig: tenants must be >= 1");
  if (shards == 0)
    throw std::invalid_argument("FleetSimConfig: shards must be >= 1");
  if (duration <= util::Minutes{0.0})
    throw std::invalid_argument("FleetSimConfig: duration must be > 0");
  if (sample_step <= util::Minutes{0.0})
    throw std::invalid_argument("FleetSimConfig: step must be > 0");
  if (rated_power <= util::Kilowatts{0.0})
    throw std::invalid_argument("FleetSimConfig: rated power must be > 0");
  site.validate();
  faults.validate();
  buggify.validate();
  if (buggify.enabled && buggify.max_delay_minutes >= sample_step.value())
    throw std::invalid_argument(
        "FleetSimConfig: buggified delay must stay below the sample step");
}

FleetSim::FleetSim(FleetSimConfig config, std::uint64_t seed)
    : config_(std::move(config)), seed_(seed) {
  config_.validate();
}

FleetSimResult FleetSim::run() { return run(nullptr); }

FleetSimResult FleetSim::run(runtime::ThreadPool* pool) {
  return run(pool, FleetSimControls{});
}

FleetSimResult FleetSim::run(runtime::ThreadPool* pool,
                             const FleetSimControls& controls) {
  FleetSimResult result;
  result.seed = seed_;
  result.tenants = config_.tenants;

  EventLoop loop(seed_, config_.buggify);
  loop.set_record_trace(config_.record_trace);
  if (controls.halt_after_events > 0)
    loop.set_halt_after_events(controls.halt_after_events);

  // --- the fleet under test ----------------------------------------------
  fleet::FleetConfig fleet_config;
  fleet_config.shards = config_.shards;
  fleet_config.seed = seed_;
  fleet_config.smoother.rated_power = config_.rated_power;
  fleet_config.smoother.sample_step = config_.sample_step;
  fleet_config.smoother.warmup_intervals = config_.warmup_intervals;
  fleet_config.smoother.history_intervals = config_.history_intervals;
  const std::size_t points =
      fleet_config.smoother.flexible_smoothing.points_per_interval;

  // Per-tenant injectors outlive the engine (hooks capture raw pointers),
  // so they are declared first and the vector is sized once.
  std::vector<resilience::FaultInjector> injectors;
  injectors.reserve(config_.tenants);

  fleet::FleetEngine engine(fleet_config, pool);

  // Per-tenant supply traces through the E48 curve, each from a split
  // stream keyed on the tenant id: same climate, independent weather.
  const trace::WindSpeedModel model(config_.site);
  const power::TurbineCurve& curve = power::TurbineCurve::enercon_e48();
  std::vector<util::TimeSeries> supply;
  supply.reserve(config_.tenants);
  for (std::size_t t = 0; t < config_.tenants; ++t) {
    const std::uint64_t tenant_id = t + 1;
    supply.push_back(curve.power_series(
        model.generate(config_.duration, config_.sample_step,
                       tenant_stream_seed(seed_, kSupplyStream, tenant_id))));
    injectors.emplace_back(
        config_.faults,
        tenant_stream_seed(seed_, kInjectorStream, tenant_id));
    resilience::FaultInjector* injector = &injectors.back();
    core::OnlineSmoother::Hooks hooks;
    hooks.battery_monitor = [injector](std::size_t interval) {
      return injector->battery_available(interval);
    };
    engine.add_tenant(tenant_id, std::move(hooks));
  }

  // --- the equivalence audit ---------------------------------------------
  // Standalone shadows of the first audit_tenants tenants, fed the same
  // corrupted stream through twin injectors (same split seed => same fault
  // decisions). Skipped on resume: a shadow cannot be reconstructed
  // mid-stream without replaying the consumed prefix.
  const std::size_t audit_count =
      controls.resume_state != nullptr
          ? 0
          : std::min(config_.audit_tenants, config_.tenants);
  std::vector<resilience::FaultInjector> shadow_injectors;
  std::vector<core::OnlineSmoother> shadows;
  shadow_injectors.reserve(audit_count);
  shadows.reserve(audit_count);
  for (std::size_t t = 0; t < audit_count; ++t) {
    const std::uint64_t tenant_id = t + 1;
    shadow_injectors.emplace_back(
        config_.faults,
        tenant_stream_seed(seed_, kInjectorStream, tenant_id));
    resilience::FaultInjector* injector = &shadow_injectors.back();
    core::OnlineSmoother::Hooks hooks;
    hooks.battery_monitor = [injector](std::size_t interval) {
      return injector->battery_available(interval);
    };
    const battery::BatterySpec spec = battery::spec_for_max_rate(
        fleet_config.smoother.rated_power * fleet_config.battery_rate_fraction,
        fleet_config.smoother.sample_step, fleet_config.battery_headroom);
    shadows.emplace_back(fleet_config.smoother, battery::Battery(spec),
                         std::move(hooks));
  }

  // --- resume ------------------------------------------------------------
  // A checkpoint is appended after every completed tick, so the number of
  // consumed ticks is exactly any tenant's consumed sample count
  // (intervals * points + open-interval pending samples).
  std::size_t first_tick = 0;
  if (controls.resume_state != nullptr) {
    engine.restore_checkpoint(*controls.resume_state);
    const core::OnlineSmoother* tenant = engine.find_tenant(1);
    if (tenant != nullptr) {
      const core::OnlineSmoother::StreamState state = tenant->export_state();
      first_tick = static_cast<std::size_t>(
          state.intervals_completed * points + state.pending.size());
    }
    // Every injector decision is pure in (seed, stream, index) EXCEPT the
    // dropout repair value (last clean sample seen). Replaying the consumed
    // prefix through the fresh injectors rebuilds that one piece of
    // sequential state, so the resumed stream corrupts tick `first_tick`
    // exactly as the uninterrupted run did.
    for (std::size_t t = 0; t < config_.tenants; ++t)
      for (std::size_t tick = 0; tick < first_tick; ++tick)
        (void)injectors[t].corrupt_sample(tick, supply[t][tick]);
  }

  // --- collector ticks ---------------------------------------------------
  const auto total_ticks = static_cast<std::size_t>(
      config_.duration.value() / config_.sample_step.value());
  std::vector<fleet::SampleRequest> batch;
  batch.reserve(config_.tenants);
  for (std::size_t tick = first_tick; tick < total_ticks; ++tick) {
    loop.schedule_at(
        util::Minutes{config_.sample_step.value() * static_cast<double>(tick)},
        "tick " + std::to_string(tick),
        [&, tick] {
          batch.clear();
          for (std::size_t t = 0; t < config_.tenants; ++t) {
            const std::uint64_t tenant_id = t + 1;
            fleet::SampleRequest request;
            request.tenant_id = tenant_id;
            request.generation_kw =
                injectors[t].corrupt_sample(tick, supply[t][tick]);
            batch.push_back(request);
          }
          const std::vector<fleet::IntervalEvent> events =
              engine.submit(batch);
          result.samples += batch.size();
          result.interval_events += events.size();
          ++result.ticks;

          // Shadows consume the identical corrupted values; after each
          // completed interval the output tails must agree bitwise.
          for (std::size_t t = 0; t < audit_count; ++t) {
            const double value =
                shadow_injectors[t].corrupt_sample(tick, supply[t][tick]);
            const std::optional<core::OnlineIntervalRecord> record =
                shadows[t].push(value);
            if (!record) continue;
            const core::OnlineSmoother* tenant =
                engine.find_tenant(t + 1);
            const util::TimeSeries& fleet_out = tenant->output();
            const util::TimeSeries& shadow_out = shadows[t].output();
            const std::size_t tail =
                std::min({points, fleet_out.size(), shadow_out.size()});
            for (std::size_t i = 0; i < tail; ++i) {
              const double a = fleet_out[fleet_out.size() - tail + i];
              const double b = shadow_out[shadow_out.size() - tail + i];
              if (std::bit_cast<std::uint64_t>(a) !=
                  std::bit_cast<std::uint64_t>(b))
                ++result.audit_mismatches;
            }
          }

          if (controls.engine != nullptr)
            controls.engine->append(engine.encode_checkpoint());
        });
  }

  loop.run();

  result.events_executed = static_cast<std::size_t>(loop.events_executed());
  result.halted = loop.pending() > 0;
  result.output_digest = engine.output_digest();
  if (config_.record_trace) {
    std::string trace;
    for (const std::string& line : loop.trace()) {
      trace += line;
      trace += '\n';
    }
    result.event_trace = std::move(trace);
  }
  return result;
}

}  // namespace smoother::dsim
