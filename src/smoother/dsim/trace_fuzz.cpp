#include "smoother/dsim/trace_fuzz.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>
#include <stdexcept>
#include <utility>

#include "smoother/persist/engine.hpp"
#include "smoother/util/format.hpp"
#include "smoother/util/rng.hpp"

namespace smoother::dsim {

namespace {
constexpr std::uint64_t kCaseStream = 0xFCA5E;
/// Crash-point placement for crash_restart cases; distinct from every
/// pipeline, nemesis and case stream of the same seed.
constexpr std::uint64_t kCrashStream = 0xC4A58;

/// The reference digest from interval `committed` on (line-granular cut).
std::string digest_tail(const std::string& digest, std::uint64_t committed) {
  std::size_t start = 0;
  for (std::uint64_t skipped = 0; skipped < committed; ++skipped) {
    const std::size_t end = digest.find('\n', start);
    if (end == std::string::npos) return {};
    start = end + 1;
  }
  return digest.substr(start);
}
}  // namespace

std::string to_string(MutationKind kind) {
  switch (kind) {
    case MutationKind::kSpike: return "spike";
    case MutationKind::kGap: return "gap";
    case MutationKind::kNanBurst: return "nan-burst";
    case MutationKind::kReorder: return "reorder";
    case MutationKind::kClockSkew: return "clock-skew";
    case MutationKind::kStuck: return "stuck";
  }
  return "unknown";
}

TraceFuzzer::TraceFuzzer(PipelineSimConfig base, FuzzerConfig fuzzer)
    : base_(std::move(base)), fuzzer_(std::move(fuzzer)) {
  if (fuzzer_.min_mutations == 0 ||
      fuzzer_.min_mutations > fuzzer_.max_mutations)
    throw std::invalid_argument(
        "FuzzerConfig: need 1 <= min_mutations <= max_mutations");
  if (fuzzer_.max_window == 0)
    throw std::invalid_argument("FuzzerConfig: max_window must be >= 1");
  if (fuzzer_.crash_restart && fuzzer_.crash_dir.empty())
    throw std::invalid_argument(
        "FuzzerConfig: crash_restart needs a crash_dir");
}

FuzzCase TraceFuzzer::generate_case(std::uint64_t case_seed) const {
  // All draws come from a split stream of the case seed, so the case is a
  // pure function of the seed — the reproducer a report prints is the
  // whole bug, no hidden fuzzer state.
  util::Rng rng = util::Rng(case_seed).split(kCaseStream);
  const std::size_t tape_len = static_cast<std::size_t>(
      base_.duration.value() / base_.sample_step.value());
  FuzzCase fuzz_case;
  fuzz_case.seed = case_seed;
  const std::size_t count =
      fuzzer_.min_mutations +
      static_cast<std::size_t>(rng.uniform_index(
          fuzzer_.max_mutations - fuzzer_.min_mutations + 1));
  for (std::size_t i = 0; i < count; ++i) {
    Mutation m;
    m.kind = static_cast<MutationKind>(
        rng.uniform_index(kMutationKindCount));
    m.position = tape_len == 0
                     ? 0
                     : static_cast<std::size_t>(rng.uniform_index(tape_len));
    m.length = 1 + static_cast<std::size_t>(
                       rng.uniform_index(fuzzer_.max_window));
    switch (m.kind) {
      case MutationKind::kSpike:
        // Log-uniform factor in [1/max, max]: both implausible surges and
        // near-zero sags.
        m.magnitude = std::exp(rng.uniform(-std::log(fuzzer_.max_spike_factor),
                                           std::log(fuzzer_.max_spike_factor)));
        break;
      case MutationKind::kClockSkew:
        // Signed skew; forward skews delay telemetry past forecast
        // updates, backward skews bunch arrivals together.
        m.magnitude = rng.uniform(-fuzzer_.max_skew_minutes,
                                  fuzzer_.max_skew_minutes);
        break;
      default:
        m.magnitude = 0.0;
        break;
    }
    fuzz_case.mutations.push_back(m);
  }
  return fuzz_case;
}

TelemetryTape TraceFuzzer::mutate(
    const TelemetryTape& tape, const std::vector<Mutation>& mutations) const {
  TelemetryTape mutated = tape;
  for (const Mutation& m : mutations) {
    if (mutated.empty()) break;
    const std::size_t first = std::min(m.position, mutated.size() - 1);
    const std::size_t last =
        std::min(first + std::max<std::size_t>(m.length, 1), mutated.size());
    switch (m.kind) {
      case MutationKind::kSpike:
        for (std::size_t i = first; i < last; ++i)
          mutated[i].value_kw *= m.magnitude;
        break;
      case MutationKind::kGap:
        for (std::size_t i = first; i < last; ++i) mutated[i].missing = true;
        break;
      case MutationKind::kNanBurst:
        for (std::size_t i = first; i < last; ++i)
          mutated[i].value_kw = std::numeric_limits<double>::quiet_NaN();
        break;
      case MutationKind::kReorder: {
        // Reverse the *arrival times* within the window: the values keep
        // their identities but hit the wire out of order.
        std::size_t lo = first, hi = last;
        while (lo + 1 < hi) {
          std::swap(mutated[lo].time_minutes, mutated[hi - 1].time_minutes);
          ++lo;
          --hi;
        }
        break;
      }
      case MutationKind::kClockSkew:
        for (std::size_t i = first; i < mutated.size(); ++i)
          mutated[i].time_minutes =
              std::max(mutated[i].time_minutes + m.magnitude, 0.0);
        break;
      case MutationKind::kStuck: {
        const double frozen = mutated[first].value_kw;
        for (std::size_t i = first; i < last; ++i)
          mutated[i].value_kw = frozen;
        break;
      }
    }
  }
  return mutated;
}

FuzzOutcome TraceFuzzer::run_case(const FuzzCase& fuzz_case) const {
  FuzzOutcome outcome;
  try {
    PipelineSimConfig config = base_;
    config.record_trace = false;  // soak speed; replay identity is gated
                                  // separately (macro_dsim, tests)
    PipelineSim sim(config, fuzz_case.seed);
    const TelemetryTape tape =
        mutate(sim.clean_tape(), fuzz_case.mutations);
    const PipelineSimResult result = sim.run(tape);
    outcome.violations = result.violations;
    outcome.intervals = result.intervals;
  } catch (const std::exception& e) {
    outcome.crashed = true;
    outcome.crash_what = e.what();
  } catch (...) {
    outcome.crashed = true;
    outcome.crash_what = "non-exception thrown";
  }
  if (fuzzer_.crash_restart && !outcome.crashed) {
    try {
      check_crash_restart(fuzz_case, outcome);
    } catch (const std::exception& e) {
      outcome.crashed = true;
      outcome.crash_what = std::string("crash-restart cycle: ") + e.what();
    } catch (...) {
      outcome.crashed = true;
      outcome.crash_what = "crash-restart cycle: non-exception thrown";
    }
  }
  return outcome;
}

void TraceFuzzer::check_crash_restart(const FuzzCase& fuzz_case,
                                      FuzzOutcome& outcome) const {
  // The cycle's own pipeline variant: buggification off so the resume cut
  // is reconstructible on arbitrarily mutated tapes, warm starts off so
  // the resumed run is comparable to the reference (neither is persisted).
  PipelineSimConfig config = base_;
  config.record_trace = false;
  config.buggify.enabled = false;
  config.solver_warm_start = false;

  PipelineSim sim(config, fuzz_case.seed);
  const TelemetryTape tape = mutate(sim.clean_tape(), fuzz_case.mutations);
  const PipelineSimResult reference = sim.run(tape);
  if (reference.events_executed <= 1) return;

  util::Rng rng = util::Rng(fuzz_case.seed).split(kCrashStream);
  const std::uint64_t halt =
      1 + rng.uniform_index(
              static_cast<std::uint64_t>(reference.events_executed) - 1);

  persist::PersistConfig engine_config;
  engine_config.directory =
      (std::filesystem::path(fuzzer_.crash_dir) /
       util::strfmt("case-%llu",
                    static_cast<unsigned long long>(fuzz_case.seed)))
          .string();
  std::filesystem::remove_all(engine_config.directory);

  {
    persist::PersistEngine engine(engine_config);
    SimControls controls;
    controls.engine = &engine;
    controls.halt_after_events = halt;
    PipelineSim crashed(config, fuzz_case.seed);
    static_cast<void>(crashed.run(tape, controls));
  }

  persist::PersistEngine engine(engine_config);
  const persist::RecoveredState recovered = engine.recover();
  SimControls controls;
  controls.engine = &engine;
  if (recovered.found) controls.resume_state = &recovered.state;
  PipelineSim resumed_sim(config, fuzz_case.seed);
  const PipelineSimResult resumed = resumed_sim.run(tape, controls);

  const std::uint64_t committed =
      recovered.found ? peek_checkpoint(recovered.state).committed_intervals
                      : 0;
  const std::optional<std::string> diff = InvariantChecker::check_replay(
      digest_tail(reference.records_digest, committed),
      resumed.records_digest);
  if (diff) {
    outcome.recovery_diverged = true;
    outcome.recovery_detail = util::strfmt(
        "killed after %llu events, %llu intervals committed: %s",
        static_cast<unsigned long long>(halt),
        static_cast<unsigned long long>(committed), diff->c_str());
    return;  // keep the failing directory for inspection
  }
  std::filesystem::remove_all(engine_config.directory);
}

FuzzCase TraceFuzzer::minimize(const FuzzCase& failing) const {
  FuzzCase current = failing;
  bool shrunk = true;
  while (shrunk && current.mutations.size() > 1) {
    shrunk = false;
    for (std::size_t i = 0; i < current.mutations.size(); ++i) {
      FuzzCase candidate = current;
      candidate.mutations.erase(candidate.mutations.begin() +
                                static_cast<std::ptrdiff_t>(i));
      if (run_case(candidate).failed()) {
        current = std::move(candidate);
        shrunk = true;
        break;  // restart the scan over the smaller list
      }
    }
  }
  return current;
}

FuzzReport TraceFuzzer::run(std::size_t cases,
                            std::uint64_t base_seed) const {
  FuzzReport report;
  for (std::size_t k = 0; k < cases; ++k) {
    const FuzzCase fuzz_case =
        generate_case(util::Rng::derive_stream_seed(base_seed, k));
    const FuzzOutcome outcome = run_case(fuzz_case);
    ++report.cases_run;
    if (outcome.crashed) ++report.crashes;
    if (!outcome.violations.empty()) ++report.violation_cases;
    if (outcome.recovery_diverged) ++report.recovery_divergences;
    if (outcome.failed() && !report.reproducer) {
      const FuzzCase minimal = minimize(fuzz_case);
      report.reproducer = minimal;
      const FuzzOutcome witness = run_case(minimal);
      std::string verdict;
      if (witness.crashed)
        verdict = "crash: " + witness.crash_what;
      else if (!witness.violations.empty())
        verdict = witness.violations.front().invariant + ": " +
                  witness.violations.front().detail;
      else if (witness.recovery_diverged)
        verdict = "recovery diverged: " + witness.recovery_detail;
      else
        verdict = "transient (did not reproduce after minimization)";
      report.reproducer_description = util::strfmt(
          "%s -> %s", describe(minimal).c_str(), verdict.c_str());
    }
  }
  return report;
}

std::string TraceFuzzer::describe(const FuzzCase& fuzz_case) {
  std::string out = util::strfmt("seed=%llu", static_cast<unsigned long long>(
                                                  fuzz_case.seed));
  for (const Mutation& m : fuzz_case.mutations)
    out += util::strfmt(" %s@%zu+%zu(mag=%.4g)", to_string(m.kind).c_str(),
                        m.position, m.length, m.magnitude);
  return out;
}

}  // namespace smoother::dsim
