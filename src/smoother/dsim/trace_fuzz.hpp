// TraceFuzzer: mutate telemetry tapes hunting for crashes and invariant
// violations.
//
// A fuzz case is (seed, mutation list): the seed fixes the clean tape, the
// buggified event schedule and the nemesis; the mutations corrupt the tape
// the way real collectors do — magnitude spikes, gaps, NaN bursts, sample
// reordering, clock skew, stuck windows. Because a PipelineSim run is a
// pure function of (config, seed, tape), any failing case replays exactly,
// and the fuzzer shrinks it to a *minimal* reproducer by greedy delta
// debugging over the mutation list before reporting it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "smoother/dsim/pipeline_sim.hpp"

namespace smoother::dsim {

enum class MutationKind {
  kSpike,      ///< multiply a window of samples by a magnitude
  kGap,        ///< mark a window of samples missing
  kNanBurst,   ///< replace a window with quiet NaN
  kReorder,    ///< reverse the arrival order of a window
  kClockSkew,  ///< shift all arrival times from a position onward
  kStuck,      ///< freeze a window at its first sample's value
};
inline constexpr std::size_t kMutationKindCount = 6;

[[nodiscard]] std::string to_string(MutationKind kind);

struct Mutation {
  MutationKind kind = MutationKind::kSpike;
  std::size_t position = 0;  ///< first affected tape index
  std::size_t length = 1;    ///< affected window (clamped to the tape)
  double magnitude = 0.0;    ///< spike factor / skew minutes (kind-specific)
};

/// One reproducible fuzz case.
struct FuzzCase {
  std::uint64_t seed = 0;
  std::vector<Mutation> mutations;
};

/// Outcome of running one case.
struct FuzzOutcome {
  bool crashed = false;       ///< an exception escaped the simulation
  std::string crash_what;
  std::vector<InvariantViolation> violations;
  std::size_t intervals = 0;
  /// crash_restart only: the kill-and-recover cycle of this case did not
  /// reproduce the uninterrupted run's remaining intervals byte for byte.
  bool recovery_diverged = false;
  std::string recovery_detail;

  [[nodiscard]] bool failed() const {
    return crashed || !violations.empty() || recovery_diverged;
  }
};

struct FuzzerConfig {
  std::size_t min_mutations = 1;
  std::size_t max_mutations = 4;
  std::size_t max_window = 48;        ///< longest mutated window, samples
  double max_spike_factor = 50.0;
  double max_skew_minutes = 30.0;

  /// When set, every case also runs a kill-and-recover cycle on its mutated
  /// tape: checkpoint to crash_dir, halt at a case-seeded event, recover
  /// from disk, resume, and require the resumed records digest to match the
  /// case's own uninterrupted run from the committed interval on. The cycle
  /// runs with buggification and solver warm starts disabled (resume
  /// reconstruction on mutated tapes needs the deterministic consumption
  /// order, and warm-start iterates are not checkpointed).
  bool crash_restart = false;
  /// Parent directory for per-case engine state; caller makes it unique per
  /// process (the same suite can run concurrently under ctest -j).
  std::string crash_dir;
};

struct FuzzReport {
  std::size_t cases_run = 0;
  std::size_t crashes = 0;
  std::size_t violation_cases = 0;
  /// crash_restart only: cases whose kill-and-recover cycle diverged.
  std::size_t recovery_divergences = 0;
  /// The smallest failing reproducer found (after minimization).
  std::optional<FuzzCase> reproducer;
  std::string reproducer_description;

  [[nodiscard]] bool clean() const {
    return crashes == 0 && violation_cases == 0 &&
           recovery_divergences == 0;
  }
};

class TraceFuzzer {
 public:
  /// `base` describes the pipeline under test; each case derives its own
  /// tape/schedule/nemesis from its case seed.
  TraceFuzzer(PipelineSimConfig base, FuzzerConfig fuzzer = {});

  /// The deterministic mutation list of `case_seed` (all draws keyed by
  /// Rng::split of the seed — the same seed always generates the same
  /// case, independent of any other fuzzing state).
  [[nodiscard]] FuzzCase generate_case(std::uint64_t case_seed) const;

  /// Applies the mutations to a copy of the tape (in list order).
  [[nodiscard]] TelemetryTape mutate(const TelemetryTape& tape,
                                     const std::vector<Mutation>& mutations)
      const;

  /// Runs one case, containing any escaping exception as a crash record.
  [[nodiscard]] FuzzOutcome run_case(const FuzzCase& fuzz_case) const;

  /// Greedy delta debugging: drops mutations one at a time while the case
  /// still fails, until no single removal keeps it failing. The result has
  /// the same seed and a subset of the mutations.
  [[nodiscard]] FuzzCase minimize(const FuzzCase& failing) const;

  /// Runs `cases` seeds derived from `base_seed` (case k uses
  /// split(base_seed, k)), minimizing and recording the first failure.
  [[nodiscard]] FuzzReport run(std::size_t cases,
                               std::uint64_t base_seed) const;

  /// One-line human/JSON-safe rendering of a case ("seed=... spike@...").
  [[nodiscard]] static std::string describe(const FuzzCase& fuzz_case);

 private:
  /// crash_restart: kill-and-recover on the case's mutated tape; fills
  /// outcome.recovery_diverged / recovery_detail on divergence.
  void check_crash_restart(const FuzzCase& fuzz_case,
                           FuzzOutcome& outcome) const;

  PipelineSimConfig base_;
  FuzzerConfig fuzzer_;
};

}  // namespace smoother::dsim
