// FleetSim: the multi-tenant fleet engine on the deterministic event loop.
//
// Where PipelineSim exercises one OnlineSmoother against a nemesis,
// FleetSim drives a whole fleet::FleetEngine: every sample step is a
// "collector tick" event that batches one telemetry sample per tenant
// (each tenant's supply is an independent wind trace, each corrupted by
// its own per-tenant FaultInjector — both derived from the simulation
// seed via split streams keyed on the tenant id) and submits the batch to
// the engine. Completed interval plans come back as fleet events.
//
// Two audits ride along:
//
//   * Equivalence: the first `audit_tenants` tenants are shadowed by
//     standalone OnlineSmoothers fed the identical corrupted stream. After
//     every completed interval the shadow's output tail must match the
//     fleet tenant's bit for bit — the witness that sharding, pooling and
//     arena placement change *where* tenants compute, never *what*.
//   * Determinism: the run is a pure function of (config, seed) — the
//     executed-event trace and the engine's output digest reproduce
//     byte-identically, serial or on any thread pool.
//
// The persistence nemesis composes the same way as PipelineSim: attach a
// PersistEngine to checkpoint the whole fleet each tick, halt after N
// events to simulate a kill, resume from a recovered checkpoint and run
// the remaining ticks — the final digest must equal the uninterrupted
// run's.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "smoother/dsim/event_loop.hpp"
#include "smoother/fleet/fleet.hpp"
#include "smoother/persist/engine.hpp"
#include "smoother/resilience/fault_injector.hpp"
#include "smoother/runtime/thread_pool.hpp"
#include "smoother/trace/wind_speed_model.hpp"
#include "smoother/util/units.hpp"

namespace smoother::dsim {

struct FleetSimConfig {
  std::size_t tenants = 32;
  util::Minutes duration = util::days(1.0);
  util::Minutes sample_step = util::kFiveMinutes;
  std::size_t shards = 8;

  /// Streaming smoother knobs (short warmup, as in PipelineSim, so a short
  /// simulated span reaches the planned path).
  std::size_t warmup_intervals = 2;
  std::size_t history_intervals = 24;

  /// Supply model shared by every tenant; each tenant draws its own trace
  /// from a split seed, so tenants see independent weather of the same
  /// climate.
  trace::WindSiteParams site = trace::WindSitePresets::texas_10();
  util::Kilowatts rated_power{800.0};

  /// Per-tenant nemesis rates (each tenant gets its own injector on a
  /// split seed). All-zero = clean fleet.
  resilience::FaultInjectorConfig faults;

  /// Collector-tick scheduling jitter; must stay below sample_step so
  /// ticks never reorder.
  BuggifyConfig buggify;

  /// Tenants shadowed by standalone smoothers for the equivalence audit
  /// (clamped to the tenant count; 0 disables; ignored when resuming).
  std::size_t audit_tenants = 2;

  bool record_trace = true;

  void validate() const;
};

/// Crash/recovery controls, mirroring PipelineSim::SimControls.
struct FleetSimControls {
  /// When set, one whole-fleet checkpoint payload is appended per tick.
  persist::PersistEngine* engine = nullptr;
  /// When > 0, the event loop halts after this many executed events.
  std::uint64_t halt_after_events = 0;
  /// When set, restores this recovered checkpoint and replays only the
  /// remaining ticks.
  const std::string* resume_state = nullptr;
};

struct FleetSimResult {
  std::uint64_t seed = 0;
  std::size_t tenants = 0;
  std::size_t ticks = 0;            ///< collector ticks executed
  std::size_t samples = 0;          ///< samples submitted to the engine
  std::size_t interval_events = 0;  ///< interval plans emitted
  std::uint64_t output_digest = 0;  ///< FleetEngine::output_digest()
  std::size_t audit_mismatches = 0; ///< equivalence audit failures
  std::size_t events_executed = 0;
  bool halted = false;              ///< stopped at a crash point
  std::string event_trace;

  [[nodiscard]] bool ok() const { return audit_mismatches == 0; }
};

class FleetSim {
 public:
  /// Throws std::invalid_argument on bad config.
  FleetSim(FleetSimConfig config, std::uint64_t seed);

  /// Serial run (no pool).
  [[nodiscard]] FleetSimResult run();

  /// Run with shards processed on `pool` (null = serial). The result is
  /// byte-identical for every pool size.
  [[nodiscard]] FleetSimResult run(runtime::ThreadPool* pool);

  [[nodiscard]] FleetSimResult run(runtime::ThreadPool* pool,
                                   const FleetSimControls& controls);

 private:
  FleetSimConfig config_;
  std::uint64_t seed_;
};

}  // namespace smoother::dsim
