// Deterministic discrete-event simulation core (FDB-style).
//
// EventLoop is a priority queue of timed callbacks over a *virtual* clock:
// no wall time is ever read, ties are broken by a stable insertion sequence
// number, and every random decision — most importantly the "buggified"
// scheduling jitter that perturbs event order the way a loaded host would —
// is drawn from util::Rng::split streams of one seed. An entire simulation
// is therefore a pure function of (seed, scheduled work): running it twice
// produces byte-identical event traces, which is the property the replay
// invariant in dsim/invariants.hpp asserts and every dsim test leans on.
//
// Buggification follows the FoundationDB recipe: with a small probability a
// scheduled delay is stretched by `max_delay * pow(u, 1000)` — almost
// always a tiny nudge, very occasionally a near-full-size stall — which is
// exactly the long-tailed perturbation that flushes out event-order
// assumptions without destroying the schedule's coarse shape.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "smoother/util/rng.hpp"
#include "smoother/util/units.hpp"

namespace smoother::dsim {

/// Randomized scheduling jitter ("buggification").
struct BuggifyConfig {
  bool enabled = true;
  /// Probability a scheduled delay is stretched at all.
  double delay_probability = 0.25;
  /// Upper bound of the stretch, virtual minutes. pow(u, 1000) keeps almost
  /// every stretch microscopic; keep this below the telemetry step so
  /// buggification reorders *nearby* events rather than whole intervals.
  double max_delay_minutes = 2.0;

  /// Throws std::invalid_argument on values outside their domains.
  void validate() const;
};

/// A deterministic discrete-event loop over a virtual clock.
class EventLoop {
 public:
  using Callback = std::function<void()>;

  /// All randomness (buggified jitter and the rng() handed to callbacks)
  /// derives from `seed` via Rng::split; two loops with the same seed and
  /// the same schedule calls execute identically.
  explicit EventLoop(std::uint64_t seed, BuggifyConfig buggify = {});

  /// Current virtual time. Never goes backwards; advances only when an
  /// event is executed.
  [[nodiscard]] util::Minutes now() const { return now_; }

  /// Schedules `fn` at now() + delay (+ buggified jitter). The label is
  /// carried into the executed-event trace. Returns the event's stable
  /// sequence number. Negative delays throw std::invalid_argument.
  std::uint64_t schedule(util::Minutes delay, std::string label, Callback fn);

  /// Schedules `fn` at the absolute virtual time `at` (+ jitter); times in
  /// the past are clamped to now().
  std::uint64_t schedule_at(util::Minutes at, std::string label, Callback fn);

  /// Runs events in (time, seq) order until the queue drains or stop() is
  /// called. Returns the number of events executed by this call.
  std::size_t run();

  /// Runs events with time <= `until`; the clock ends at max(executed
  /// event times, previous now) and never exceeds `until`.
  std::size_t run_until(util::Minutes until);

  /// Makes run()/run_until() return after the current event completes.
  void stop() { running_ = false; }

  /// Crash point for the persistence nemesis: run()/run_until() halt after
  /// the loop's lifetime events_executed() reaches `count` (0 disables).
  /// The event at the crash point completes — the "kill" lands between
  /// events, exactly where a process death interrupts a run loop.
  void set_halt_after_events(std::uint64_t count) { halt_after_ = count; }

  [[nodiscard]] std::uint64_t events_scheduled() const { return next_seq_; }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Simulation-owned randomness for callbacks that need draws of their
  /// own; an independent split stream of the loop seed (stream 1; the
  /// buggify stream is 0).
  [[nodiscard]] util::Rng& rng() { return callback_rng_; }

  /// When enabled (default), every executed event appends one line
  /// "t=<time> seq=<seq> <label>" to trace(); the concatenation is the
  /// replay-determinism witness. Disable for soak runs that only need the
  /// side effects.
  void set_record_trace(bool record) { record_trace_ = record; }
  [[nodiscard]] const std::vector<std::string>& trace() const {
    return trace_;
  }

 private:
  struct Event {
    double time_minutes;
    std::uint64_t seq;
    std::string label;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time_minutes != b.time_minutes)
        return a.time_minutes > b.time_minutes;
      return a.seq > b.seq;  // stable tie-break: insertion order
    }
  };

  /// Pops and executes one event; returns false when the queue is empty or
  /// the next event lies beyond `until`.
  bool step(double until_minutes);

  [[nodiscard]] double buggified(double delay_minutes);

  BuggifyConfig buggify_;
  util::Rng buggify_rng_;
  util::Rng callback_rng_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  util::Minutes now_{0.0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t halt_after_ = 0;
  bool running_ = true;
  bool record_trace_ = true;
  std::vector<std::string> trace_;
};

}  // namespace smoother::dsim
