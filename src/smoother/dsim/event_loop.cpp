#include "smoother/dsim/event_loop.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "smoother/util/format.hpp"

namespace smoother::dsim {

namespace {
constexpr std::uint64_t kBuggifyStream = 0;
constexpr std::uint64_t kCallbackStream = 1;
}  // namespace

void BuggifyConfig::validate() const {
  if (!(delay_probability >= 0.0 && delay_probability <= 1.0))
    throw std::invalid_argument("BuggifyConfig: probability in [0,1]");
  if (!(max_delay_minutes >= 0.0))
    throw std::invalid_argument("BuggifyConfig: max delay must be >= 0");
}

EventLoop::EventLoop(std::uint64_t seed, BuggifyConfig buggify)
    : buggify_(buggify),
      buggify_rng_(util::Rng(seed).split(kBuggifyStream)),
      callback_rng_(util::Rng(seed).split(kCallbackStream)) {
  buggify_.validate();
}

double EventLoop::buggified(double delay_minutes) {
  if (!buggify_.enabled || buggify_.max_delay_minutes <= 0.0)
    return delay_minutes;
  // Two draws per schedule() call, unconditionally, so the stream position
  // stays aligned regardless of which branch is taken.
  const double gate = buggify_rng_.uniform();
  const double magnitude = buggify_rng_.uniform();
  if (gate < buggify_.delay_probability)
    delay_minutes +=
        buggify_.max_delay_minutes * std::pow(magnitude, 1000.0);
  return delay_minutes;
}

std::uint64_t EventLoop::schedule(util::Minutes delay, std::string label,
                                  Callback fn) {
  if (delay < util::Minutes{0.0})
    throw std::invalid_argument("EventLoop::schedule: negative delay");
  const double at = now_.value() + buggified(delay.value());
  const std::uint64_t seq = next_seq_++;
  queue_.push(Event{at, seq, std::move(label), std::move(fn)});
  return seq;
}

std::uint64_t EventLoop::schedule_at(util::Minutes at, std::string label,
                                     Callback fn) {
  const double delay = std::max(at.value() - now_.value(), 0.0);
  return schedule(util::Minutes{delay}, std::move(label), std::move(fn));
}

bool EventLoop::step(double until_minutes) {
  if (queue_.empty() || queue_.top().time_minutes > until_minutes)
    return false;
  // priority_queue::top() is const; the event is copied out rather than
  // moved, which is fine — callbacks are scheduled once and run once.
  Event event = queue_.top();
  queue_.pop();
  now_ = util::Minutes{std::max(now_.value(), event.time_minutes)};
  ++executed_;
  if (record_trace_)
    trace_.push_back(util::strfmt("t=%.6f seq=%llu %s", event.time_minutes,
                                  static_cast<unsigned long long>(event.seq),
                                  event.label.c_str()));
  event.fn();
  if (halt_after_ > 0 && executed_ >= halt_after_) running_ = false;
  return true;
}

std::size_t EventLoop::run() {
  running_ = true;
  std::size_t count = 0;
  while (running_ && step(std::numeric_limits<double>::infinity())) ++count;
  return count;
}

std::size_t EventLoop::run_until(util::Minutes until) {
  running_ = true;
  std::size_t count = 0;
  while (running_ && step(until.value())) ++count;
  return count;
}

}  // namespace smoother::dsim
