#include "smoother/dsim/invariants.hpp"

#include <algorithm>
#include <cmath>

#include "smoother/util/format.hpp"

namespace smoother::dsim {

void InvariantChecker::record(std::string invariant, std::string detail,
                              double sim_time_minutes, std::size_t interval) {
  violations_.push_back(InvariantViolation{std::move(invariant),
                                           std::move(detail),
                                           sim_time_minutes, interval});
}

void InvariantChecker::check_interval(std::size_t interval,
                                      double sim_time_minutes,
                                      const battery::Battery& battery,
                                      const BatterySnapshot& before,
                                      double step_minutes,
                                      const std::vector<double>& accepted,
                                      const std::vector<double>& delivered) {
  ++intervals_checked_;
  const battery::BatterySpec& spec = battery.spec();
  const BatterySnapshot after = BatterySnapshot::of(battery);

  // SoC corridor. The battery clamps internally, so anything beyond
  // floating-point dust is a real model breach.
  const double soc = battery.soc_fraction();
  const double soc_eps = 1e-9;
  if (soc < spec.min_soc_fraction - soc_eps ||
      soc > spec.max_soc_fraction + soc_eps)
    record("soc-corridor",
           util::strfmt("soc %.12f outside [%.3f, %.3f]", soc,
                        spec.min_soc_fraction, spec.max_soc_fraction),
           sim_time_minutes, interval);

  // Cell-level conservation: stored-energy delta == charge - discharge at
  // the cell. The battery's ceiling/floor clamps can shave floating-point
  // overshoot, hence the tolerance.
  const double delta_e = after.energy_kwh - before.energy_kwh;
  const double delta_c = after.total_charged_kwh - before.total_charged_kwh;
  const double delta_d =
      after.total_discharged_kwh - before.total_discharged_kwh;
  const double scale =
      std::max({1.0, std::abs(delta_c), std::abs(delta_d),
                spec.capacity.value() * 1e-9});
  if (std::abs(delta_e - (delta_c - delta_d)) > tolerance_kwh_ * scale)
    record("energy-conservation-cell",
           util::strfmt("dE %.9f != charged %.9f - discharged %.9f", delta_e,
                        delta_c, delta_d),
           sim_time_minutes, interval);
  if (delta_c < 0.0 || delta_d < 0.0)
    record("energy-conservation-cell",
           util::strfmt("cumulative counters decreased (dC %.9f, dD %.9f)",
                        delta_c, delta_d),
           sim_time_minutes, interval);

  // Stream integrity + terminal-level conservation.
  if (delivered.size() != accepted.size()) {
    record("stream-integrity",
           util::strfmt("delivered %zu samples for %zu accepted",
                        delivered.size(), accepted.size()),
           sim_time_minutes, interval);
    return;
  }
  const double dt_hours = step_minutes / 60.0;
  double accepted_kwh = 0.0, delivered_kwh = 0.0;
  bool finite = true;
  for (std::size_t i = 0; i < delivered.size(); ++i) {
    if (!std::isfinite(delivered[i]) || delivered[i] < 0.0) finite = false;
    accepted_kwh += accepted[i] * dt_hours;
    delivered_kwh += delivered[i] * dt_hours;
  }
  if (!finite) {
    record("stream-integrity", "non-finite or negative delivered sample",
           sim_time_minutes, interval);
    return;
  }
  const double terminal_out = delta_d * spec.discharge_efficiency;
  const double terminal_in = delta_c / spec.charge_efficiency;
  const double imbalance =
      (delivered_kwh - accepted_kwh) - (terminal_out - terminal_in);
  const double flow_scale = std::max(
      {1.0, std::abs(delivered_kwh), std::abs(accepted_kwh)});
  if (std::abs(imbalance) > tolerance_kwh_ * flow_scale)
    record("energy-conservation-terminal",
           util::strfmt("delivered-accepted %.9f kWh != battery exchange "
                        "%.9f kWh",
                        delivered_kwh - accepted_kwh,
                        terminal_out - terminal_in),
           sim_time_minutes, interval);
}

std::optional<std::string> InvariantChecker::check_monotone_fallback(
    const std::vector<std::pair<double, double>>& rate_to_fallback) {
  for (std::size_t i = 1; i < rate_to_fallback.size(); ++i) {
    const auto& [rate_prev, fb_prev] = rate_to_fallback[i - 1];
    const auto& [rate, fb] = rate_to_fallback[i];
    if (rate >= rate_prev && fb < fb_prev)
      return util::strfmt(
          "fallback rate decreased from %.6f (injected %.3f) to %.6f "
          "(injected %.3f)",
          fb_prev, rate_prev, fb, rate);
  }
  return std::nullopt;
}

std::optional<std::string> InvariantChecker::check_replay(
    const std::string& first, const std::string& second) {
  if (first == second) return std::nullopt;
  const std::size_t n = std::min(first.size(), second.size());
  std::size_t i = 0;
  while (i < n && first[i] == second[i]) ++i;
  const auto context = [&](const std::string& s) {
    return s.substr(i < 40 ? 0 : i - 40,
                    std::min<std::size_t>(80, s.size() - (i < 40 ? 0 : i - 40)));
  };
  return util::strfmt(
      "replay diverged at byte %zu (sizes %zu vs %zu): \"...%s\" vs "
      "\"...%s\"",
      i, first.size(), second.size(), context(first).c_str(),
      context(second).c_str());
}

}  // namespace smoother::dsim
