// Battery wear accounting.
//
// The paper's region design explicitly trades the smoothing effect against
// battery consumption: "frequent charging and discharging operations
// exacerbate battery lifetime and increase energy loss [25]". WearTracker
// quantifies that cost: it counts charge/discharge direction switches,
// extracts SoC half-cycles with a rainflow-style reversal scan, and converts
// them into an estimated lifetime consumption using a power-law cycle-depth
// model (shallow cycles wear far less than deep ones).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace smoother::battery {

/// One extracted SoC half-cycle.
struct HalfCycle {
  double depth = 0.0;  ///< SoC swing as a fraction of capacity, in (0, 1]
};

/// Wear model parameters. With the defaults, a full 100%-depth cycle costs
/// 1/3000 of the battery's life and depth sensitivity follows the common
/// k_p ~ 1.1 power law for deep-cycle lead-acid/UPS batteries.
struct WearModelParams {
  double cycles_to_failure_at_full_depth = 3000.0;
  double depth_exponent = 1.1;
};

/// Streaming wear tracker fed with the SoC after every battery step.
class WearTracker {
 public:
  explicit WearTracker(WearModelParams params = {});

  /// Records the SoC (fraction of capacity) after one simulation step.
  void record_soc(double soc_fraction);

  /// Number of charge<->discharge direction reversals observed so far.
  [[nodiscard]] std::size_t direction_switches() const {
    return direction_switches_;
  }

  /// Half-cycles extracted so far (completed reversals; the trailing
  /// monotone ramp is still open and not yet counted).
  [[nodiscard]] const std::vector<HalfCycle>& half_cycles() const {
    return half_cycles_;
  }

  /// Estimated fraction of battery life consumed (0 = fresh, 1 = end of
  /// life), including the still-open trailing ramp.
  [[nodiscard]] double life_consumed() const;

  /// Sum of |SoC| movement seen (total fractional throughput).
  [[nodiscard]] double total_throughput() const { return throughput_; }

 private:
  [[nodiscard]] double cycle_cost(double depth) const;

  WearModelParams params_;
  std::vector<double> pending_;  ///< reversal extrema not yet paired
  std::vector<HalfCycle> half_cycles_;
  std::size_t direction_switches_ = 0;
  double throughput_ = 0.0;
  bool has_last_ = false;
  double last_soc_ = 0.0;
  int last_direction_ = 0;  ///< -1 discharging, +1 charging, 0 unknown
};

/// One-shot helper: wear of a complete SoC trajectory.
[[nodiscard]] double life_consumed_by(std::span<const double> soc_trajectory,
                                      WearModelParams params = {});

}  // namespace smoother::battery
