#include "smoother/battery/battery.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace smoother::battery {

void BatterySpec::validate() const {
  if (capacity <= util::KilowattHours{0.0})
    throw std::invalid_argument("BatterySpec: capacity must be positive");
  if (min_soc_fraction < 0.0 || max_soc_fraction > 1.0 ||
      min_soc_fraction >= max_soc_fraction)
    throw std::invalid_argument("BatterySpec: bad SoC corridor");
  if (max_charge_rate <= util::Kilowatts{0.0} ||
      max_discharge_rate <= util::Kilowatts{0.0})
    throw std::invalid_argument("BatterySpec: rates must be positive");
  if (charge_efficiency <= 0.0 || charge_efficiency > 1.0 ||
      discharge_efficiency <= 0.0 || discharge_efficiency > 1.0)
    throw std::invalid_argument("BatterySpec: efficiencies in (0,1]");
}

BatterySpec spec_for_max_rate(util::Kilowatts max_rate, util::Minutes sustain,
                              double headroom) {
  if (max_rate <= util::Kilowatts{0.0})
    throw std::invalid_argument("spec_for_max_rate: rate must be positive");
  if (sustain <= util::Minutes{0.0})
    throw std::invalid_argument("spec_for_max_rate: sustain must be positive");
  if (headroom < 1.0)
    throw std::invalid_argument("spec_for_max_rate: headroom must be >= 1");
  BatterySpec spec;
  spec.capacity = util::energy(max_rate, sustain) * headroom;
  spec.max_charge_rate = max_rate;
  spec.max_discharge_rate = max_rate;
  return spec;
}

Battery::Battery(BatterySpec spec, double initial_soc_fraction)
    : spec_(spec), energy_{0.0} {
  spec_.validate();
  const double soc =
      initial_soc_fraction < 0.0
          ? 0.5 * (spec_.min_soc_fraction + spec_.max_soc_fraction)
          : initial_soc_fraction;
  if (soc < spec_.min_soc_fraction || soc > spec_.max_soc_fraction)
    throw std::invalid_argument("Battery: initial SoC outside corridor");
  energy_ = spec_.capacity * soc;
}

util::Kilowatts Battery::max_charge_power(util::Minutes dt) const {
  if (dt <= util::Minutes{0.0})
    throw std::invalid_argument("Battery: dt must be positive");
  const util::KilowattHours room = spec_.max_energy() - energy_;
  if (room <= util::KilowattHours{0.0}) return util::Kilowatts{0.0};
  // Input power whose stored (efficiency-scaled) energy fills the room.
  const util::Kilowatts soc_limit =
      util::average_power(room, dt) / spec_.charge_efficiency;
  return std::min(soc_limit, spec_.max_charge_rate);
}

util::Kilowatts Battery::max_discharge_power(util::Minutes dt) const {
  if (dt <= util::Minutes{0.0})
    throw std::invalid_argument("Battery: dt must be positive");
  const util::KilowattHours avail = energy_ - spec_.min_energy();
  if (avail <= util::KilowattHours{0.0}) return util::Kilowatts{0.0};
  const util::Kilowatts soc_limit =
      util::average_power(avail, dt) * spec_.discharge_efficiency;
  return std::min(soc_limit, spec_.max_discharge_rate);
}

util::Kilowatts Battery::charge(util::Kilowatts power, util::Minutes dt) {
  if (power < util::Kilowatts{0.0})
    throw std::invalid_argument("Battery::charge: negative power");
  const util::Kilowatts accepted = std::min(power, max_charge_power(dt));
  const util::KilowattHours stored =
      util::energy(accepted, dt) * spec_.charge_efficiency;
  energy_ += stored;
  total_charged_ += stored;
  // Guard against floating-point overshoot of the ceiling.
  energy_ = std::min(energy_, spec_.max_energy());
  return accepted;
}

util::Kilowatts Battery::discharge(util::Kilowatts power, util::Minutes dt) {
  if (power < util::Kilowatts{0.0})
    throw std::invalid_argument("Battery::discharge: negative power");
  const util::Kilowatts delivered = std::min(power, max_discharge_power(dt));
  const util::KilowattHours drawn =
      util::energy(delivered, dt) / spec_.discharge_efficiency;
  energy_ -= drawn;
  total_discharged_ += drawn;
  energy_ = std::max(energy_, spec_.min_energy());
  return delivered;
}

util::Kilowatts Battery::apply_signed(util::Kilowatts s, util::Minutes dt) {
  if (s >= util::Kilowatts{0.0}) return discharge(s, dt);
  return -charge(-s, dt);
}

void Battery::restore(const BatteryState& state) {
  if (!std::isfinite(state.energy_kwh) ||
      !std::isfinite(state.total_charged_kwh) ||
      !std::isfinite(state.total_discharged_kwh))
    throw std::invalid_argument("Battery::restore: non-finite state");
  if (state.total_charged_kwh < 0.0 || state.total_discharged_kwh < 0.0)
    throw std::invalid_argument(
        "Battery::restore: throughput totals must be >= 0");
  const util::KilowattHours energy{state.energy_kwh};
  if (energy < spec_.min_energy() || energy > spec_.max_energy())
    throw std::invalid_argument(
        "Battery::restore: energy outside the SoC corridor");
  energy_ = energy;
  total_charged_ = util::KilowattHours{state.total_charged_kwh};
  total_discharged_ = util::KilowattHours{state.total_discharged_kwh};
}

double Battery::equivalent_full_cycles() const {
  const util::KilowattHours window = spec_.max_energy() - spec_.min_energy();
  if (window <= util::KilowattHours{0.0}) return 0.0;
  return (total_charged_ + total_discharged_).value() / (2.0 * window.value());
}

}  // namespace smoother::battery
