#include "smoother/battery/esd_bank.hpp"

#include <stdexcept>

namespace smoother::battery {

void EsdBank::add(std::string name, Battery battery) {
  devices_.push_back(EsdDevice{std::move(name), std::move(battery)});
}

const EsdDevice& EsdBank::device(std::size_t i) const {
  if (i >= devices_.size()) throw std::out_of_range("EsdBank::device");
  return devices_[i];
}

EsdDevice& EsdBank::device(std::size_t i) {
  if (i >= devices_.size()) throw std::out_of_range("EsdBank::device");
  return devices_[i];
}

util::KilowattHours EsdBank::total_capacity() const {
  util::KilowattHours total{0.0};
  for (const auto& d : devices_) total += d.battery.spec().capacity;
  return total;
}

util::KilowattHours EsdBank::total_energy() const {
  util::KilowattHours total{0.0};
  for (const auto& d : devices_) total += d.battery.energy();
  return total;
}

util::Kilowatts EsdBank::total_charge_rate() const {
  util::Kilowatts total{0.0};
  for (const auto& d : devices_) total += d.battery.spec().max_charge_rate;
  return total;
}

util::Kilowatts EsdBank::total_discharge_rate() const {
  util::Kilowatts total{0.0};
  for (const auto& d : devices_) total += d.battery.spec().max_discharge_rate;
  return total;
}

double EsdBank::aggregate_equivalent_cycles() const {
  // Weight each device's cycles by its usable window so a churned small
  // device does not dominate the figure.
  double weighted = 0.0;
  double total_window = 0.0;
  for (const auto& d : devices_) {
    const double window = (d.battery.spec().max_energy() -
                           d.battery.spec().min_energy())
                              .value();
    weighted += d.battery.equivalent_full_cycles() * window;
    total_window += window;
  }
  return total_window > 0.0 ? weighted / total_window : 0.0;
}

EsdBank EsdBank::fast_deep_pair(util::KilowattHours total_capacity,
                                util::Kilowatts total_rate,
                                double fast_fraction, double rate_share) {
  if (total_capacity <= util::KilowattHours{0.0} ||
      total_rate <= util::Kilowatts{0.0})
    throw std::invalid_argument("fast_deep_pair: need positive totals");
  if (fast_fraction <= 0.0 || fast_fraction >= 1.0 || rate_share <= 0.0 ||
      rate_share >= 1.0)
    throw std::invalid_argument("fast_deep_pair: fractions in (0,1)");

  BatterySpec fast;
  fast.capacity = total_capacity * fast_fraction;
  fast.max_charge_rate = total_rate * rate_share;
  fast.max_discharge_rate = total_rate * rate_share;
  fast.charge_efficiency = 1.0;
  fast.discharge_efficiency = 1.0;

  BatterySpec deep;
  deep.capacity = total_capacity * (1.0 - fast_fraction);
  deep.max_charge_rate = total_rate * (1.0 - rate_share);
  deep.max_discharge_rate = total_rate * (1.0 - rate_share);
  deep.charge_efficiency = 1.0;
  deep.discharge_efficiency = 1.0;

  EsdBank bank;
  bank.add("fast", Battery(fast));
  bank.add("deep", Battery(deep));
  return bank;
}

}  // namespace smoother::battery
