#include "smoother/battery/wear.hpp"

#include <cmath>
#include <stdexcept>

namespace smoother::battery {

WearTracker::WearTracker(WearModelParams params) : params_(params) {
  if (params_.cycles_to_failure_at_full_depth <= 0.0)
    throw std::invalid_argument("WearTracker: cycles_to_failure must be > 0");
  if (params_.depth_exponent <= 0.0)
    throw std::invalid_argument("WearTracker: depth_exponent must be > 0");
}

double WearTracker::cycle_cost(double depth) const {
  if (depth <= 0.0) return 0.0;
  // Cycles to failure at depth d: N(d) = N_full * d^(-k); one *half* cycle
  // at depth d therefore consumes d^k / (2 * N_full) of the life.
  return std::pow(depth, params_.depth_exponent) /
         (2.0 * params_.cycles_to_failure_at_full_depth);
}

void WearTracker::record_soc(double soc_fraction) {
  if (soc_fraction < 0.0 || soc_fraction > 1.0)
    throw std::invalid_argument("WearTracker: SoC fraction outside [0,1]");
  if (!has_last_) {
    has_last_ = true;
    last_soc_ = soc_fraction;
    pending_.push_back(soc_fraction);
    return;
  }
  const double delta = soc_fraction - last_soc_;
  if (delta == 0.0) return;  // idle step: no movement, no reversal
  throughput_ += std::abs(delta);
  const int direction = delta > 0.0 ? 1 : -1;
  if (last_direction_ != 0 && direction != last_direction_) {
    ++direction_switches_;
    // The previous SoC was a local extremum: it closes a half-cycle against
    // the extremum before it.
    pending_.push_back(last_soc_);
    if (pending_.size() >= 2) {
      const double a = pending_[pending_.size() - 2];
      const double b = pending_[pending_.size() - 1];
      half_cycles_.push_back(HalfCycle{std::abs(b - a)});
    }
  }
  last_direction_ = direction;
  last_soc_ = soc_fraction;
}

double WearTracker::life_consumed() const {
  double life = 0.0;
  for (const auto& hc : half_cycles_) life += cycle_cost(hc.depth);
  // The open trailing ramp from the last extremum to the current SoC.
  if (has_last_ && !pending_.empty())
    life += cycle_cost(std::abs(last_soc_ - pending_.back()));
  return life;
}

double life_consumed_by(std::span<const double> soc_trajectory,
                        WearModelParams params) {
  WearTracker tracker(params);
  for (double soc : soc_trajectory) tracker.record_soc(soc);
  return tracker.life_consumed();
}

}  // namespace smoother::battery
