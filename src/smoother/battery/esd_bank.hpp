// A bank of heterogeneous energy storage devices.
//
// Datacenters rarely deploy one monolithic battery: a typical design pairs
// a small high-power device (flywheel/supercap-class, fast but shallow)
// with a large high-energy one (lead-acid/Li-ion, deep but rate-limited) —
// the "what, where and how much" question of the paper's reference [25].
// EsdBank holds such a portfolio; the multi-ESD Flexible Smoothing planner
// (core/flexible_smoothing.hpp) splits each interval's schedule across the
// devices inside one QP.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "smoother/battery/battery.hpp"

namespace smoother::battery {

/// One named device in the bank.
struct EsdDevice {
  std::string name;
  Battery battery;
};

/// Portfolio of storage devices sharing one bus.
class EsdBank {
 public:
  EsdBank() = default;

  /// Adds a device (takes the battery by value; it starts at its
  /// constructor SoC).
  void add(std::string name, Battery battery);

  [[nodiscard]] std::size_t size() const { return devices_.size(); }
  [[nodiscard]] bool empty() const { return devices_.empty(); }

  [[nodiscard]] const EsdDevice& device(std::size_t i) const;
  [[nodiscard]] EsdDevice& device(std::size_t i);

  /// Aggregate nameplate capacity.
  [[nodiscard]] util::KilowattHours total_capacity() const;

  /// Aggregate stored energy right now.
  [[nodiscard]] util::KilowattHours total_energy() const;

  /// Sum of the devices' max charge / discharge rates.
  [[nodiscard]] util::Kilowatts total_charge_rate() const;
  [[nodiscard]] util::Kilowatts total_discharge_rate() const;

  /// Equivalent full cycles, throughput-weighted across devices.
  [[nodiscard]] double aggregate_equivalent_cycles() const;

  /// Classic two-device portfolio: a fast shallow device holding
  /// `fast_fraction` of the energy but `rate_share` of the total power,
  /// and a deep slow device with the rest. Both lossless (the paper's
  /// ideal ESD), corridors [0.1, 1.0].
  static EsdBank fast_deep_pair(util::KilowattHours total_capacity,
                                util::Kilowatts total_rate,
                                double fast_fraction = 0.2,
                                double rate_share = 0.7);

 private:
  std::vector<EsdDevice> devices_;
};

}  // namespace smoother::battery
