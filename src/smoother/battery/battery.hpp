// UPS battery / energy storage device (ESD) model.
//
// Flexible Smoothing executes its per-interval charge/discharge schedule
// against this model. It enforces the real-world limits the paper calls out:
// finite capacity, a state-of-charge corridor (never below 10 % — deep
// discharge damages the battery [31] — and never above 100 %), and finite
// charge/discharge power rates. Energy conversion losses are modelled with
// separate charge and discharge efficiencies.
#pragma once

#include "smoother/util/units.hpp"

namespace smoother::battery {

/// Static battery parameters.
struct BatterySpec {
  util::KilowattHours capacity{100.0};
  double min_soc_fraction = 0.10;  ///< floor of the SoC corridor
  double max_soc_fraction = 1.00;  ///< ceiling of the SoC corridor
  util::Kilowatts max_charge_rate{1000.0};
  util::Kilowatts max_discharge_rate{1000.0};
  double charge_efficiency = 0.95;     ///< grid->battery
  double discharge_efficiency = 0.95;  ///< battery->load

  /// Throws std::invalid_argument on non-physical parameters.
  void validate() const;

  [[nodiscard]] util::KilowattHours min_energy() const {
    return capacity * min_soc_fraction;
  }
  [[nodiscard]] util::KilowattHours max_energy() const {
    return capacity * max_soc_fraction;
  }
};

/// Sizes a battery per the paper's implementation note: capacity sustains
/// one 5-minute time point of operation at the maximum charge/discharge
/// rate. `headroom` widens the capacity beyond that minimum (1.0 = the
/// paper's sizing; the paper notes a larger battery smooths better).
[[nodiscard]] BatterySpec spec_for_max_rate(util::Kilowatts max_rate,
                                            util::Minutes sustain,
                                            double headroom = 1.0);

/// The serializable dynamic state of a Battery: everything that changes
/// after construction. The spec is deliberately excluded — it is
/// configuration, reconstructed from config on restart, and restore()
/// validates the checkpointed energy against the *current* spec's corridor
/// so a stale checkpoint cannot smuggle an out-of-corridor SoC past the
/// invariants.
struct BatteryState {
  double energy_kwh = 0.0;
  double total_charged_kwh = 0.0;
  double total_discharged_kwh = 0.0;
};

/// Mutable battery state with rate- and SoC-limited operations.
///
/// Sign convention matches the paper's S vector: a *discharge* adds power to
/// the system (positive s), a *charge* absorbs surplus power (negative s).
class Battery {
 public:
  /// Starts at the given SoC fraction (default: mid-corridor). Throws
  /// std::invalid_argument when the spec is invalid or the initial SoC is
  /// outside the corridor.
  explicit Battery(BatterySpec spec, double initial_soc_fraction = -1.0);

  [[nodiscard]] const BatterySpec& spec() const { return spec_; }

  /// Stored energy right now.
  [[nodiscard]] util::KilowattHours energy() const { return energy_; }

  /// State of charge as a fraction of capacity.
  [[nodiscard]] double soc_fraction() const {
    return energy_ / spec_.capacity;
  }

  /// Greatest power the battery can absorb for `dt` without breaking the
  /// rate limit or the SoC ceiling (input power, before charge losses).
  [[nodiscard]] util::Kilowatts max_charge_power(util::Minutes dt) const;

  /// Greatest power the battery can deliver for `dt` without breaking the
  /// rate limit or the SoC floor (output power, after discharge losses).
  [[nodiscard]] util::Kilowatts max_discharge_power(util::Minutes dt) const;

  /// Absorbs up to `power` for `dt`; returns the power actually accepted
  /// (<= power, limited by rate and SoC ceiling). Negative requests throw.
  util::Kilowatts charge(util::Kilowatts power, util::Minutes dt);

  /// Delivers up to `power` for `dt`; returns the power actually delivered
  /// (<= power, limited by rate and SoC floor). Negative requests throw.
  util::Kilowatts discharge(util::Kilowatts power, util::Minutes dt);

  /// Executes one signed step of a Flexible Smoothing schedule: s > 0
  /// discharges |s|, s < 0 charges |s|. Returns the signed power actually
  /// exchanged (same convention).
  util::Kilowatts apply_signed(util::Kilowatts s, util::Minutes dt);

  /// Total energy that has flowed in (at the cell, after charge losses).
  [[nodiscard]] util::KilowattHours total_charged() const {
    return total_charged_;
  }

  /// Total energy that has flowed out (at the cell, before discharge
  /// losses).
  [[nodiscard]] util::KilowattHours total_discharged() const {
    return total_discharged_;
  }

  /// Equivalent full cycles so far: cell throughput / (2 * usable window).
  [[nodiscard]] double equivalent_full_cycles() const;

  /// Captures the dynamic state for checkpointing.
  [[nodiscard]] BatteryState state() const {
    return {energy_.value(), total_charged_.value(),
            total_discharged_.value()};
  }

  /// Restores a state captured with state(). Throws std::invalid_argument
  /// when the energy lies outside this spec's SoC corridor, a throughput
  /// total is negative, or any field is non-finite.
  void restore(const BatteryState& state);

 private:
  BatterySpec spec_;
  util::KilowattHours energy_;
  util::KilowattHours total_charged_{0.0};
  util::KilowattHours total_discharged_{0.0};
};

}  // namespace smoother::battery
