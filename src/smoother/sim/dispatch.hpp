// Power dispatch co-simulation.
//
// Walks supply and demand series step by step and accounts for where every
// kWh goes: renewable used directly, battery charge/discharge, grid import,
// and spilled (unusable) renewable. Three policies cover the paper's
// comparison arms:
//
//   kDirect        no battery at all — raw supply vs demand;
//   kComp          the "efficient battery storage solution" baseline
//                  (Multigreen style, paper §IV-B): renewable feeds the
//                  load first, surplus charges the battery, and on a
//                  deficit the controller discharges at the maximum rate.
//                  The burst discharge is deliberate: the paper's critique
//                  is that this controller uses renewable "as much as
//                  possible ... without considering the renewable energy
//                  in battery", i.e. it is SoC-blind and overshoots, which
//                  is what makes its delivered supply oscillate;
//   kCompMatching  ablation arm: same storage but the discharge tracks the
//                  demand exactly (min(deficit, max rate)). This idealized
//                  controller is gentler than the paper's Comp — keeping it
//                  separate makes the comparison honest.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "smoother/battery/battery.hpp"
#include "smoother/util/time_series.hpp"
#include "smoother/util/units.hpp"

namespace smoother::sim {

enum class DispatchPolicy {
  kDirect,        ///< no energy storage
  kComp,          ///< SoC-blind burst discharge (the paper's comparator)
  kCompMatching,  ///< demand-matching discharge (idealized ablation)
};

[[nodiscard]] std::string to_string(DispatchPolicy policy);

/// Full accounting of one dispatch run.
struct DispatchResult {
  util::TimeSeries effective_supply;  ///< renewable + battery flow (kW)
  util::TimeSeries grid_power;        ///< grid import per step (kW)
  util::TimeSeries battery_flow;      ///< signed kW: + discharge, - charge
  std::size_t switching_times = 0;    ///< effective-supply/demand crossings
  util::KilowattHours renewable_used{0.0};
  util::KilowattHours grid_energy{0.0};
  util::KilowattHours spilled_renewable{0.0};
  double battery_equivalent_cycles = 0.0;
  double renewable_utilization = 0.0;  ///< used / generated
};

/// Runs the dispatch. `battery` is required for the Comp policies and
/// ignored for kDirect. Supply and demand must share a shape.
[[nodiscard]] DispatchResult dispatch(const util::TimeSeries& supply,
                                      const util::TimeSeries& demand,
                                      DispatchPolicy policy,
                                      battery::Battery* battery = nullptr);

}  // namespace smoother::sim
