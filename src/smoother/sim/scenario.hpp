// Scenario builders: the paper's experimental setups in one call each.
//
// A scenario bundles a renewable supply series with a matching demand side
// (a utilization-driven demand series for web/Google workloads, a job set
// for batch workloads). Demand for the switching experiments uses the
// *dynamic* (load-proportional) server power: in the iSwitch framing the
// renewable-powered sub-cluster hosts migratable load, so the component
// that competes with wind capacity is the part that scales with
// utilization, not the always-on idle floor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "smoother/power/datacenter.hpp"
#include "smoother/power/wind_farm.hpp"
#include "smoother/sched/job.hpp"
#include "smoother/trace/batch_workload.hpp"
#include "smoother/trace/web_workload.hpp"
#include "smoother/trace/wind_speed_model.hpp"
#include "smoother/util/time_series.hpp"

namespace smoother::sim {

/// The paper's evaluation fleet (11,000 servers at 186 W / 62 W).
[[nodiscard]] power::DatacenterPowerModel paper_datacenter();

/// Dynamic (load-proportional) cluster power for a utilization series:
/// N * (p_full - p_idle) * mu, in kW.
[[nodiscard]] util::TimeSeries dynamic_power_series(
    const util::TimeSeries& utilization,
    const power::DatacenterPowerModel& model);

/// Wind farm power series for a site preset and installed capacity, using
/// the ENERCON E48 curve (paper Fig. 1).
[[nodiscard]] util::TimeSeries wind_power_series(
    const trace::WindSiteParams& site, util::Kilowatts installed_capacity,
    util::Minutes duration, util::Minutes step, std::uint64_t seed);

/// A supply/demand pair for the switching-times experiments
/// (Figs. 11-14): one web workload preset against one wind site.
struct WebScenario {
  std::string name;
  util::TimeSeries supply;  ///< wind power (kW), 5-min step
  util::TimeSeries demand;  ///< dynamic cluster power (kW), 5-min step
};

[[nodiscard]] WebScenario make_web_scenario(
    const trace::WebWorkloadParams& web, const trace::WindSiteParams& site,
    util::Kilowatts installed_capacity, util::Minutes duration,
    std::uint64_t seed);

/// A job set plus supply for the Active Delay experiments (Figs. 15-17).
struct BatchScenario {
  std::string name;
  util::TimeSeries supply;        ///< wind power (kW), 5-min step
  std::vector<sched::Job> jobs;
  std::size_t total_servers = 0;
  util::KilowattHours workload_energy{0.0};
  util::KilowattHours renewable_energy{0.0};
};

/// `supply_ratio` sizes the wind farm so the renewable energy over the
/// horizon is roughly supply_ratio x the workload energy (the paper's
/// "sufficient" ~1.5 and "insufficient" ~0.5 arms).
[[nodiscard]] BatchScenario make_batch_scenario(
    const trace::BatchWorkloadParams& batch,
    const trace::WindSiteParams& site, double supply_ratio,
    util::Minutes duration, std::size_t total_servers, std::uint64_t seed);

/// Hybrid supply: a wind farm plus a PV array feeding the same bus.
/// Night-peaking wind and day-peaking solar are naturally complementary,
/// so for the same installed capacity the hybrid's aggregate output is
/// flatter than either source alone — a deployment choice Smoother
/// composes with (the middleware is agnostic to what generates the kW).
[[nodiscard]] util::TimeSeries make_hybrid_supply(
    const trace::WindSiteParams& wind_site, util::Kilowatts wind_capacity,
    util::Kilowatts solar_capacity, util::Minutes duration,
    util::Minutes step, std::uint64_t seed);

}  // namespace smoother::sim
