// Grid-frequency response simulation (swing equation).
//
// The paper motivates smoothing with grid stability: fluctuating renewable
// injection "can generally degrade system frequency stabilization,
// resulting in higher maximum rate-of-change-of-frequency (ROCOF)". This
// module quantifies that claim for an islanded microgrid: the classic
// single-machine swing equation with load damping,
//
//   d(Δf)/dt = f0 / (2 H S_base) * ΔP(t)  -  (D / (2 H)) * Δf
//
// where ΔP = supply − demand (kW, converted to per-unit on S_base), H is
// the aggregate inertia constant (seconds), and D the load-damping factor.
// The primary-control reserve is modelled as a proportional droop that
// saturates — what a governor or grid-forming inverter would contribute.
#pragma once

#include <cstddef>

#include "smoother/util/time_series.hpp"
#include "smoother/util/units.hpp"

namespace smoother::sim {

/// Microgrid dynamic parameters. Defaults describe a small islanded system
/// dominated by inverter-based resources (low inertia).
struct GridModelParams {
  double nominal_frequency_hz = 50.0;
  double base_power_kw = 2000.0;   ///< S_base
  double inertia_seconds = 4.0;    ///< H
  double load_damping = 1.0;       ///< D (pu power per pu frequency)
  double droop_gain_pu = 20.0;     ///< primary reserve: pu power per pu freq
  double droop_limit_pu = 0.10;    ///< reserve saturation (fraction of base)
  double integration_step_s = 1.0; ///< inner Euler step

  void validate() const;
};

/// Frequency-excursion statistics of one run.
struct FrequencyStats {
  double max_deviation_hz = 0.0;      ///< max |f - f0|
  double max_rocof_hz_per_s = 0.0;    ///< max |df/dt|
  double seconds_outside_band = 0.0;  ///< time with |Δf| > band
  double band_hz = 0.2;               ///< the band used
  util::TimeSeries frequency_hz;      ///< sampled at the input step
};

/// Simulates the frequency response to a supply/demand imbalance series.
class GridFrequencyModel {
 public:
  explicit GridFrequencyModel(GridModelParams params = {});

  [[nodiscard]] const GridModelParams& params() const { return params_; }

  /// Runs the swing equation over the horizon. `supply` and `demand` must
  /// share a shape; each sample's imbalance is held for its whole window
  /// (zero-order hold) while the ODE integrates at integration_step_s.
  /// `band_hz` sets the out-of-band accounting threshold.
  [[nodiscard]] FrequencyStats simulate(const util::TimeSeries& supply,
                                        const util::TimeSeries& demand,
                                        double band_hz = 0.2) const;

 private:
  GridModelParams params_;
};

}  // namespace smoother::sim
