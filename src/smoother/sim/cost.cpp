#include "smoother/sim/cost.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace smoother::sim {

void TariffSpec::validate() const {
  if (peak_price_per_kwh < 0.0 || offpeak_price_per_kwh < 0.0)
    throw std::invalid_argument("TariffSpec: prices must be >= 0");
  if (peak_price_per_kwh < offpeak_price_per_kwh)
    throw std::invalid_argument("TariffSpec: peak must cost >= off-peak");
  if (!(0.0 <= peak_start_hour && peak_start_hour < peak_end_hour &&
        peak_end_hour <= 24.0))
    throw std::invalid_argument("TariffSpec: bad peak window");
  if (demand_charge_per_kw < 0.0 || battery_pack_price_per_kwh < 0.0)
    throw std::invalid_argument("TariffSpec: charges must be >= 0");
}

bool TariffSpec::is_peak_hour(double hour_of_day) const {
  return hour_of_day >= peak_start_hour && hour_of_day < peak_end_hour;
}

CostModel::CostModel(TariffSpec tariff) : tariff_(tariff) {
  tariff_.validate();
}

double CostModel::grid_energy_cost(const util::TimeSeries& grid_power) const {
  const double step_hours = grid_power.step().value() / 60.0;
  double cost = 0.0;
  for (std::size_t i = 0; i < grid_power.size(); ++i) {
    const double hour =
        std::fmod(grid_power.time_at(i).value() / 60.0, 24.0);
    const double price = tariff_.is_peak_hour(hour)
                             ? tariff_.peak_price_per_kwh
                             : tariff_.offpeak_price_per_kwh;
    cost += std::max(grid_power[i], 0.0) * step_hours * price;
  }
  return cost;
}

double CostModel::demand_charge(const util::TimeSeries& grid_power) const {
  if (grid_power.empty()) return 0.0;
  return std::max(grid_power.max(), 0.0) * tariff_.demand_charge_per_kw;
}

double CostModel::battery_wear_cost(double life_fraction,
                                    util::KilowattHours capacity) const {
  if (life_fraction < 0.0)
    throw std::invalid_argument("CostModel: negative life fraction");
  return life_fraction * capacity.value() * tariff_.battery_pack_price_per_kwh;
}

CostBreakdown CostModel::price(const util::TimeSeries& grid_power,
                               double battery_life_fraction,
                               util::KilowattHours battery_capacity) const {
  CostBreakdown breakdown;
  breakdown.grid_energy_cost = grid_energy_cost(grid_power);
  breakdown.demand_charge = demand_charge(grid_power);
  breakdown.battery_wear_cost =
      battery_wear_cost(battery_life_fraction, battery_capacity);
  return breakdown;
}

}  // namespace smoother::sim
