// Electricity cost accounting.
//
// The paper motivates Smoother partly by electricity bills ("reducing the
// cost of systems"); Multigreen, the Comp baseline, is literally a
// cost-minimizing controller. This module prices a dispatch outcome so the
// arms can be compared in dollars, with the three cost components real
// datacenter tariffs have:
//
//   * time-of-use energy: peak vs off-peak grid price per kWh,
//   * a demand charge on the billing-period peak grid draw (per kW),
//   * battery wear: cycling consumes battery life, amortized against the
//     pack's replacement cost.
#pragma once

#include "smoother/battery/wear.hpp"
#include "smoother/util/time_series.hpp"
#include "smoother/util/units.hpp"

namespace smoother::sim {

/// Tariff and amortization parameters. Defaults are representative US
/// commercial numbers (dollars).
struct TariffSpec {
  double peak_price_per_kwh = 0.14;
  double offpeak_price_per_kwh = 0.06;
  double peak_start_hour = 8.0;   ///< local time, inclusive
  double peak_end_hour = 22.0;    ///< exclusive
  double demand_charge_per_kw = 12.0;  ///< on the period's peak grid draw
  double battery_pack_price_per_kwh = 300.0;  ///< replacement capex

  /// Throws std::invalid_argument on inconsistent values.
  void validate() const;

  /// True when the (wall-clock) hour falls in the peak window.
  [[nodiscard]] bool is_peak_hour(double hour_of_day) const;
};

/// Itemized cost of one run.
struct CostBreakdown {
  double grid_energy_cost = 0.0;
  double demand_charge = 0.0;
  double battery_wear_cost = 0.0;

  [[nodiscard]] double total() const {
    return grid_energy_cost + demand_charge + battery_wear_cost;
  }
};

/// Prices grid usage and battery wear.
class CostModel {
 public:
  explicit CostModel(TariffSpec tariff = {});

  [[nodiscard]] const TariffSpec& tariff() const { return tariff_; }

  /// Time-of-use cost of a grid power series (kW). The series' timestamps
  /// are interpreted as wall-clock minutes from midnight of day 0.
  [[nodiscard]] double grid_energy_cost(
      const util::TimeSeries& grid_power) const;

  /// Demand charge for the series' peak draw.
  [[nodiscard]] double demand_charge(const util::TimeSeries& grid_power) const;

  /// Wear cost of a battery whose life consumption over the run is
  /// `life_fraction` (from battery::WearTracker::life_consumed()), for a
  /// pack of the given capacity.
  [[nodiscard]] double battery_wear_cost(double life_fraction,
                                         util::KilowattHours capacity) const;

  /// Full breakdown for one run.
  [[nodiscard]] CostBreakdown price(const util::TimeSeries& grid_power,
                                    double battery_life_fraction,
                                    util::KilowattHours battery_capacity) const;

 private:
  TariffSpec tariff_;
};

}  // namespace smoother::sim
