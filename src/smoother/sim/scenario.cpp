#include "smoother/sim/scenario.hpp"

#include <stdexcept>

#include "smoother/power/solar.hpp"
#include "smoother/power/turbine.hpp"
#include "smoother/trace/solar_model.hpp"

namespace smoother::sim {

power::DatacenterPowerModel paper_datacenter() {
  power::DatacenterSpec spec;  // defaults are the paper's values
  return power::DatacenterPowerModel(spec);
}

util::TimeSeries dynamic_power_series(
    const util::TimeSeries& utilization,
    const power::DatacenterPowerModel& model) {
  const auto& spec = model.spec();
  const double dynamic_kw_at_full =
      (spec.server_peak_watts - spec.server_idle_watts) *
      static_cast<double>(spec.server_count) / 1000.0;
  return utilization.map(
      [dynamic_kw_at_full](double mu) { return dynamic_kw_at_full * mu; });
}

util::TimeSeries wind_power_series(const trace::WindSiteParams& site,
                                   util::Kilowatts installed_capacity,
                                   util::Minutes duration, util::Minutes step,
                                   std::uint64_t seed) {
  const trace::WindSpeedModel model(site);
  const util::TimeSeries speed = model.generate(duration, step, seed);
  const power::WindFarm farm(power::TurbineCurve::enercon_e48(),
                             installed_capacity);
  return farm.power_series(speed);
}

WebScenario make_web_scenario(const trace::WebWorkloadParams& web,
                              const trace::WindSiteParams& site,
                              util::Kilowatts installed_capacity,
                              util::Minutes duration, std::uint64_t seed) {
  WebScenario scenario;
  scenario.name = web.name + " x " + site.name;
  scenario.supply = wind_power_series(site, installed_capacity, duration,
                                      util::kFiveMinutes, seed);
  const trace::WebWorkloadModel workload(web);
  const util::TimeSeries utilization =
      workload.generate(duration, util::kFiveMinutes, seed ^ 0x9e3779b9ULL);
  scenario.demand = dynamic_power_series(utilization, paper_datacenter());
  return scenario;
}

BatchScenario make_batch_scenario(const trace::BatchWorkloadParams& batch,
                                  const trace::WindSiteParams& site,
                                  double supply_ratio, util::Minutes duration,
                                  std::size_t total_servers,
                                  std::uint64_t seed) {
  if (supply_ratio <= 0.0)
    throw std::invalid_argument("make_batch_scenario: ratio must be > 0");

  BatchScenario scenario;
  scenario.name = batch.name + " x " + site.name;
  scenario.total_servers = total_servers;

  power::DatacenterSpec dc_spec;
  dc_spec.server_count = total_servers;
  const power::DatacenterPowerModel dc(dc_spec);

  const trace::BatchWorkloadModel workload(batch);
  scenario.jobs = workload.generate(duration, total_servers, dc, seed);
  double workload_kwh = 0.0;
  for (const auto& job : scenario.jobs)
    workload_kwh += job.total_energy().value();
  scenario.workload_energy = util::KilowattHours{workload_kwh};

  // Size the farm so renewable energy over the horizon is
  // supply_ratio x workload energy: generate at a reference capacity and
  // scale linearly (farm output is proportional to installed capacity).
  // Wind for the batch experiments is night-peaking (nocturnal jet),
  // reproducing the supply/demand misalignment of paper Fig. 7.
  trace::WindSiteParams night_site = site;
  night_site.diurnal_amplitude = std::max(site.diurnal_amplitude, 0.60);
  night_site.diurnal_peak_hour = 2.0;
  const util::Kilowatts reference_capacity{976.0};
  const util::TimeSeries reference = wind_power_series(
      night_site, reference_capacity, duration, util::kFiveMinutes,
      seed ^ 0x51ed270bULL);
  const double reference_kwh = reference.total_energy().value();
  if (reference_kwh <= 0.0)
    throw std::runtime_error("make_batch_scenario: becalmed reference trace");
  const double scale = supply_ratio * workload_kwh / reference_kwh;
  scenario.supply = reference * scale;
  scenario.renewable_energy = scenario.supply.total_energy();
  return scenario;
}

util::TimeSeries make_hybrid_supply(const trace::WindSiteParams& wind_site,
                                    util::Kilowatts wind_capacity,
                                    util::Kilowatts solar_capacity,
                                    util::Minutes duration, util::Minutes step,
                                    std::uint64_t seed) {
  // Night-peaking wind (nocturnal jet) + a coastal-preset PV array.
  trace::WindSiteParams night_wind = wind_site;
  night_wind.diurnal_amplitude = std::max(wind_site.diurnal_amplitude, 0.35);
  night_wind.diurnal_peak_hour = 2.0;
  const util::TimeSeries wind =
      wind_power_series(night_wind, wind_capacity, duration, step, seed);

  power::PvArraySpec pv_spec;
  pv_spec.rated_power = solar_capacity;
  const power::PvArray array(pv_spec);
  const trace::SolarIrradianceModel irradiance(
      trace::SolarSitePresets::coastal());
  const util::TimeSeries solar = array.power_series(
      irradiance.generate(duration, step, seed ^ 0x50504cULL));
  return wind + solar;
}

}  // namespace smoother::sim