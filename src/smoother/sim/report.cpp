#include "smoother/sim/report.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "smoother/util/format.hpp"

namespace smoother::sim {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  if (columns_.empty())
    throw std::invalid_argument("TablePrinter: no columns");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size())
    throw std::invalid_argument("TablePrinter: cell count mismatch");
  rows_.push_back(std::move(cells));
}

void TablePrinter::add_row(const std::vector<double>& cells) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double v : cells) formatted.push_back(util::strfmt("%.6g", v));
  add_row(std::move(formatted));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    widths[c] = columns_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "  " << cells[c]
         << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << '\n';
  };
  print_row(columns_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::print_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << ',';
    os << columns_[c];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  }
}

void print_experiment_header(std::ostream& os, const std::string& id,
                             const std::string& description) {
  os << "==========================================================\n"
     << id << " - " << description << '\n'
     << "==========================================================\n";
}

void print_series_csv(std::ostream& os, const std::string& name,
                      const util::TimeSeries& series, std::size_t max_points) {
  os << "minute," << name << '\n';
  const std::size_t n = series.size();
  const std::size_t stride =
      (max_points == 0 || n <= max_points) ? 1 : (n + max_points - 1) / max_points;
  for (std::size_t i = 0; i < n; i += stride)
    os << series.time_at(i).value() << ',' << series[i] << '\n';
}

std::string sparkline(const util::TimeSeries& series, std::size_t width) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  if (series.empty() || width == 0) return "";
  const double lo = series.min();
  const double hi = series.max();
  const double span = hi - lo;
  std::string out;
  const std::size_t n = series.size();
  for (std::size_t col = 0; col < width; ++col) {
    // Average the samples mapping to this column.
    const std::size_t begin = col * n / width;
    const std::size_t end = std::max((col + 1) * n / width, begin + 1);
    double acc = 0.0;
    for (std::size_t i = begin; i < end; ++i) acc += series[i];
    const double value = acc / static_cast<double>(end - begin);
    const std::size_t level =
        span <= 0.0 ? 0
                    : std::min<std::size_t>(
                          static_cast<std::size_t>((value - lo) / span * 7.999),
                          7);
    out += kLevels[level];
  }
  return out;
}

}  // namespace smoother::sim
