// Geographic load balancing across renewable-powered sites.
//
// The paper's related work cites schemes that "leverage geographical load
// balancing among distributed systems to improve the utilization of
// renewable power" (Greenware [14]). This module composes that idea with
// Smoother: deferrable jobs are assigned across sites — each with its own
// wind/solar supply and cluster — by greedy renewable-headroom matching,
// and each site then runs its own Active Delay schedule. Wind regimes at
// distant sites are weakly correlated, so the portfolio catches renewable
// energy that any single site would spill.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "smoother/core/active_delay.hpp"
#include "smoother/sched/scheduler.hpp"
#include "smoother/util/time_series.hpp"

namespace smoother::sim {

/// One datacenter site in the federation.
struct GeoSite {
  std::string name;
  util::TimeSeries supply;  ///< renewable power (kW); all sites must share
                            ///< one step/length grid
  std::size_t servers = 11000;
};

/// Result of a federated scheduling run.
struct GeoResult {
  /// Per-site schedule, index-aligned with the input sites.
  std::vector<sched::ScheduleResult> site_results;
  /// Jobs assigned to each site, index-aligned with the input sites.
  std::vector<std::size_t> jobs_per_site;
  double total_renewable_utilization = 0.0;  ///< used / generated, summed
  util::KilowattHours total_renewable_used{0.0};
  util::KilowattHours total_generated{0.0};
  std::size_t total_deadline_misses = 0;
};

/// Assignment policies.
enum class GeoPolicy {
  /// Everything to site 0 (the single-site baseline).
  kSingleSite,
  /// Greedy headroom matching: jobs in slack-ascending order, each to the
  /// site whose *remaining* renewable energy over the job's feasible
  /// window is largest relative to the work already committed there.
  kRenewableHeadroom,
};

[[nodiscard]] std::string to_string(GeoPolicy policy);

/// Assigns `jobs` across `sites` per `policy` and runs Active Delay at
/// every site. Sites must be non-empty and share one supply grid; throws
/// std::invalid_argument otherwise.
[[nodiscard]] GeoResult geo_schedule(
    const std::vector<sched::Job>& jobs, const std::vector<GeoSite>& sites,
    GeoPolicy policy,
    const core::ActiveDelayConfig& ad_config = {});

}  // namespace smoother::sim
