#include "smoother/sim/frequency.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace smoother::sim {

void GridModelParams::validate() const {
  if (nominal_frequency_hz <= 0.0)
    throw std::invalid_argument("GridModelParams: f0 must be > 0");
  if (base_power_kw <= 0.0)
    throw std::invalid_argument("GridModelParams: base power must be > 0");
  if (inertia_seconds <= 0.0)
    throw std::invalid_argument("GridModelParams: inertia must be > 0");
  if (load_damping < 0.0 || droop_gain_pu < 0.0 || droop_limit_pu < 0.0)
    throw std::invalid_argument("GridModelParams: gains must be >= 0");
  if (integration_step_s <= 0.0)
    throw std::invalid_argument("GridModelParams: step must be > 0");
}

GridFrequencyModel::GridFrequencyModel(GridModelParams params)
    : params_(params) {
  params_.validate();
}

FrequencyStats GridFrequencyModel::simulate(const util::TimeSeries& supply,
                                            const util::TimeSeries& demand,
                                            double band_hz) const {
  if (supply.step() != demand.step() || supply.size() != demand.size())
    throw std::invalid_argument("GridFrequencyModel: shape mismatch");
  if (band_hz <= 0.0)
    throw std::invalid_argument("GridFrequencyModel: band must be > 0");

  FrequencyStats stats;
  stats.band_hz = band_hz;
  stats.frequency_hz = util::TimeSeries(supply.step(), supply.size());

  const double f0 = params_.nominal_frequency_hz;
  const double two_h = 2.0 * params_.inertia_seconds;
  // Explicit Euler needs dt well under the system time constant
  // 2H / (droop + damping); cap the step for stability regardless of the
  // configured value.
  const double stiffness =
      params_.droop_gain_pu + params_.load_damping + 1e-9;
  const double dt =
      std::min(params_.integration_step_s, 0.2 * two_h / stiffness);
  const double window_s = supply.step().value() * 60.0;
  const auto inner_steps =
      std::max<std::size_t>(1, static_cast<std::size_t>(window_s / dt));

  double delta_f_pu = 0.0;  // per-unit frequency deviation
  for (std::size_t i = 0; i < supply.size(); ++i) {
    // The renewable-side imbalance held over this window (zero-order hold).
    const double imbalance_pu =
        (supply[i] - demand[i]) / params_.base_power_kw;
    for (std::size_t s = 0; s < inner_steps; ++s) {
      // Primary reserve (droop) pushes against the deviation, saturating
      // at its reserve limit.
      const double droop_pu = std::clamp(
          -params_.droop_gain_pu * delta_f_pu, -params_.droop_limit_pu,
          params_.droop_limit_pu);
      const double net_pu =
          imbalance_pu + droop_pu - params_.load_damping * delta_f_pu;
      const double dfdt_pu = net_pu / two_h;
      stats.max_rocof_hz_per_s =
          std::max(stats.max_rocof_hz_per_s, std::abs(dfdt_pu) * f0);
      delta_f_pu += dfdt_pu * dt;
      if (std::abs(delta_f_pu * f0) > band_hz)
        stats.seconds_outside_band += dt;
    }
    const double deviation_hz = delta_f_pu * f0;
    stats.max_deviation_hz =
        std::max(stats.max_deviation_hz, std::abs(deviation_hz));
    stats.frequency_hz[i] = f0 + deviation_hz;
  }
  return stats;
}

}  // namespace smoother::sim
