#include "smoother/sim/dispatch.hpp"

#include <algorithm>
#include <stdexcept>

#include "smoother/core/metrics.hpp"

namespace smoother::sim {

std::string to_string(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kDirect:
      return "direct";
    case DispatchPolicy::kComp:
      return "comp";
    case DispatchPolicy::kCompMatching:
      return "comp-matching";
  }
  return "?";
}

DispatchResult dispatch(const util::TimeSeries& supply,
                        const util::TimeSeries& demand,
                        DispatchPolicy policy, battery::Battery* battery) {
  if (supply.step() != demand.step() || supply.size() != demand.size())
    throw std::invalid_argument("dispatch: series shape mismatch");
  const bool uses_battery = policy != DispatchPolicy::kDirect;
  if (uses_battery && battery == nullptr)
    throw std::invalid_argument("dispatch: Comp policies need a battery");

  const std::size_t n = supply.size();
  const util::Minutes dt = supply.step();

  DispatchResult result;
  result.effective_supply = util::TimeSeries(dt, n);
  result.grid_power = util::TimeSeries(dt, n);
  result.battery_flow = util::TimeSeries(dt, n);

  for (std::size_t i = 0; i < n; ++i) {
    const double r = std::max(supply[i], 0.0);
    const double d = std::max(demand[i], 0.0);
    double flow = 0.0;  // + discharge, - charge
    if (uses_battery) {
      if (r >= d) {
        // Load is covered; surplus charges the battery.
        const util::Kilowatts accepted =
            battery->charge(util::Kilowatts{r - d}, dt);
        flow = -accepted.value();
      } else if (policy == DispatchPolicy::kComp) {
        // SoC-blind controller: dump stored energy at the maximum rate.
        const util::Kilowatts delivered =
            battery->discharge(battery->spec().max_discharge_rate, dt);
        flow = delivered.value();
      } else {
        // Demand-matching controller: top up exactly to the demand.
        const util::Kilowatts delivered =
            battery->discharge(util::Kilowatts{d - r}, dt);
        flow = delivered.value();
      }
    }
    const double effective = r + flow;
    result.effective_supply[i] = effective;
    const double used = std::min(effective, d);
    result.grid_power[i] = d - used;
    result.battery_flow[i] = flow;
  }

  result.switching_times =
      core::energy_switching_times(result.effective_supply, demand);
  result.renewable_used =
      core::renewable_energy_used(result.effective_supply, demand);
  result.grid_energy = result.grid_power.total_energy();
  result.spilled_renewable =
      core::unusable_renewable(result.effective_supply, demand);
  if (battery != nullptr)
    result.battery_equivalent_cycles = battery->equivalent_full_cycles();
  const util::KilowattHours generated = supply.total_energy();
  result.renewable_utilization =
      generated > util::KilowattHours{0.0}
          ? result.renewable_used / generated
          : 0.0;
  return result;
}

}  // namespace smoother::sim
