// Canonical experiment procedures shared by the bench figures.
//
// Each of the paper's evaluation figures compares the same small set of
// arms; these helpers implement the arms once:
//
//   W/O FS   raw wind supply, no storage        (dispatch kDirect)
//   W/ Comp  raw wind supply + Multigreen-style battery (dispatch kComp)
//   W/ FS    Flexible-Smoothing-smoothed supply (dispatch kDirect on the
//            smoothed series — the battery is inside FS)
//   W/O AD   immediate scheduling of the job set
//   W/ AD    Active Delay scheduling of the job set
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "smoother/core/smoother.hpp"
#include "smoother/sim/dispatch.hpp"
#include "smoother/sim/scenario.hpp"

namespace smoother::sim {

/// A reasonable middleware configuration for a wind farm of the given
/// installed capacity, following the paper's implementation notes: battery
/// max rate = half the installed capacity, capacity sized to sustain one
/// 5-minute point at that rate, lossless cells (the paper's ideal ESD),
/// SoC corridor [0.1 M, M], Region-II-2 = top 5 % of the variance CDF.
[[nodiscard]] core::SmootherConfig default_config(
    util::Kilowatts installed_capacity);

/// The three switching-times arms on one supply/demand pair.
struct SwitchingComparison {
  std::size_t without_fs = 0;  ///< raw supply, no battery
  std::size_t with_comp = 0;   ///< raw supply + Comp battery
  std::size_t with_fs = 0;     ///< FS-smoothed supply
  double fs_required_max_rate_kw = 0.0;
  double fs_smoothed_intervals = 0.0;
};

/// Runs all three arms. Supply/demand must share a 5-minute grid. The Comp
/// arm uses a battery with the same spec as the FS arm's.
[[nodiscard]] SwitchingComparison run_switching_comparison(
    const util::TimeSeries& supply, const util::TimeSeries& demand,
    const core::SmootherConfig& config);

/// The Fig. 17 pair: renewable utilization without and with Active Delay,
/// both on the FS-smoothed supply.
struct UtilizationComparison {
  double without_ad = 0.0;
  double with_ad = 0.0;
  std::size_t deadline_misses_without = 0;
  std::size_t deadline_misses_with = 0;

  [[nodiscard]] double improvement_percent() const {
    return without_ad > 0.0 ? (with_ad - without_ad) / without_ad * 100.0
                            : 0.0;
  }
};

[[nodiscard]] UtilizationComparison run_utilization_comparison(
    const BatchScenario& scenario, const core::SmootherConfig& config);

/// The Fig. 18 pair: switching times of "W/O FS + W/ AD" vs
/// "W/ FS + W/ AD" on a batch scenario (demand comes from the AD schedule).
struct CombinedComparison {
  std::size_t without_fs = 0;
  std::size_t with_fs = 0;

  [[nodiscard]] double reduction_percent() const {
    return without_fs > 0
               ? (static_cast<double>(without_fs) -
                  static_cast<double>(with_fs)) /
                     static_cast<double>(without_fs) * 100.0
               : 0.0;
  }
};

[[nodiscard]] CombinedComparison run_combined_comparison(
    const BatchScenario& scenario, const core::SmootherConfig& config);

// ---------------------------------------------------------------------------
// Parallel variants: the same arms evaluated over *many* scenarios at once
// on the smoother::runtime work-stealing pool. Results come back ordered by
// scenario index with per-scenario wall time, so output is identical for
// any thread count; threads == 1 is the serial loop these replace,
// threads == 0 means one worker per hardware thread.

/// One scenario's comparison plus the wall time its evaluation took.
template <class T>
struct TimedComparison {
  std::string name;
  T comparison;
  double wall_ms = 0.0;
};

[[nodiscard]] std::vector<TimedComparison<SwitchingComparison>>
run_switching_comparisons(const std::vector<WebScenario>& scenarios,
                          const core::SmootherConfig& config,
                          std::size_t threads = 0);

[[nodiscard]] std::vector<TimedComparison<UtilizationComparison>>
run_utilization_comparisons(const std::vector<BatchScenario>& scenarios,
                            const core::SmootherConfig& config,
                            std::size_t threads = 0);

}  // namespace smoother::sim
