// Plain-text reporting helpers for the bench harness and examples.
//
// Every figure/table binary prints (a) a short header naming the paper
// experiment and (b) machine-readable CSV-style rows, so the output can be
// both eyeballed and re-plotted.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "smoother/util/time_series.hpp"

namespace smoother::sim {

/// Fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  /// Adds a row of preformatted cells; must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with %.6g.
  void add_row(const std::vector<double>& cells);

  /// Writes an aligned table with a header rule.
  void print(std::ostream& os) const;

  /// Writes the same data as CSV (header + rows).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a banner naming the experiment being reproduced.
void print_experiment_header(std::ostream& os, const std::string& id,
                             const std::string& description);

/// Prints a series as CSV rows "minute,<name>", downsampled to at most
/// `max_points` evenly spaced samples (0 = all).
void print_series_csv(std::ostream& os, const std::string& name,
                      const util::TimeSeries& series,
                      std::size_t max_points = 0);

/// Renders a coarse ASCII sparkline of a series (for quick visual checks).
[[nodiscard]] std::string sparkline(const util::TimeSeries& series,
                                    std::size_t width = 72);

}  // namespace smoother::sim
