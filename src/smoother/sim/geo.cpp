#include "smoother/sim/geo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace smoother::sim {

std::string to_string(GeoPolicy policy) {
  switch (policy) {
    case GeoPolicy::kSingleSite:
      return "single-site";
    case GeoPolicy::kRenewableHeadroom:
      return "renewable-headroom";
  }
  return "?";
}

namespace {

/// Remaining renewable energy (kWh) at a site inside the job's feasible
/// execution window [arrival, deadline], given what has been committed.
double window_headroom_kwh(const util::TimeSeries& supply,
                           const std::vector<double>& committed_kw,
                           const sched::Job& job) {
  const double step = supply.step().value();
  const auto first = static_cast<std::size_t>(
      std::max(job.arrival.value(), 0.0) / step);
  const auto last = std::min<std::size_t>(
      supply.size(),
      static_cast<std::size_t>(std::max(job.deadline.value(), 0.0) / step) +
          1);
  double headroom = 0.0;
  for (std::size_t t = first; t < last; ++t)
    headroom += std::max(supply[t] - committed_kw[t], 0.0);
  return headroom * step / 60.0;
}

}  // namespace

GeoResult geo_schedule(const std::vector<sched::Job>& jobs,
                       const std::vector<GeoSite>& sites, GeoPolicy policy,
                       const core::ActiveDelayConfig& ad_config) {
  if (sites.empty())
    throw std::invalid_argument("geo_schedule: need at least one site");
  for (const auto& site : sites) {
    if (site.supply.step() != sites.front().supply.step() ||
        site.supply.size() != sites.front().supply.size())
      throw std::invalid_argument("geo_schedule: sites on different grids");
    if (site.servers == 0)
      throw std::invalid_argument("geo_schedule: empty site cluster");
  }

  // --- assignment ----------------------------------------------------------
  std::vector<std::vector<sched::Job>> assigned(sites.size());
  if (policy == GeoPolicy::kSingleSite) {
    assigned[0] = jobs;
  } else {
    // Greedy headroom matching, most-constrained (least slack) jobs first.
    std::vector<sched::Job> order = jobs;
    std::stable_sort(order.begin(), order.end(),
                     [](const sched::Job& a, const sched::Job& b) {
                       return a.slack_at(a.arrival) < b.slack_at(b.arrival);
                     });
    // Coarse per-site commitment ledger: the job's power spread over its
    // runtime starting at arrival (the scheduler will refine the timing,
    // but the ledger keeps the greedy pass from piling everything onto
    // one windy site).
    std::vector<std::vector<double>> committed(
        sites.size(),
        std::vector<double>(sites.front().supply.size(), 0.0));
    for (const auto& job : order) {
      std::size_t best_site = 0;
      double best_headroom = -1.0;
      for (std::size_t s = 0; s < sites.size(); ++s) {
        if (job.servers > sites[s].servers) continue;
        const double headroom =
            window_headroom_kwh(sites[s].supply, committed[s], job);
        if (headroom > best_headroom) {
          best_headroom = headroom;
          best_site = s;
        }
      }
      assigned[best_site].push_back(job);
      // Commit the job's footprint where Active Delay will actually put
      // it: the windiest still-free slots of its feasible window (a greedy
      // approximation of the per-site schedule that follows).
      const auto& supply = sites[best_site].supply;
      auto& ledger = committed[best_site];
      const double step = supply.step().value();
      const auto first = static_cast<std::size_t>(
          std::max(job.arrival.value(), 0.0) / step);
      const auto last = std::min<std::size_t>(
          supply.size(),
          static_cast<std::size_t>(std::max(job.deadline.value(), 0.0) /
                                   step) +
              1);
      auto span = static_cast<std::size_t>(
          std::ceil(job.runtime.value() / step - 1e-9));
      std::vector<std::size_t> slots;
      slots.reserve(last - first);
      for (std::size_t t = first; t < last; ++t) slots.push_back(t);
      std::stable_sort(slots.begin(), slots.end(),
                       [&](std::size_t a, std::size_t b) {
                         return supply[a] - ledger[a] >
                                supply[b] - ledger[b];
                       });
      for (std::size_t t : slots) {
        if (span == 0) break;
        ledger[t] += job.power.value();
        --span;
      }
    }
  }

  // --- per-site Active Delay -------------------------------------------------
  GeoResult result;
  result.site_results.reserve(sites.size());
  const core::ActiveDelayScheduler scheduler(ad_config);
  for (std::size_t s = 0; s < sites.size(); ++s) {
    sched::ScheduleRequest request;
    request.jobs = assigned[s];
    request.renewable = sites[s].supply;
    request.total_servers = sites[s].servers;
    auto site_result = scheduler.schedule(request);
    result.jobs_per_site.push_back(assigned[s].size());
    result.total_renewable_used +=
        site_result.outcome.renewable_energy_used;
    result.total_generated += sites[s].supply.total_energy();
    result.total_deadline_misses += site_result.outcome.deadline_misses;
    result.site_results.push_back(std::move(site_result));
  }
  result.total_renewable_utilization =
      result.total_generated > util::KilowattHours{0.0}
          ? result.total_renewable_used / result.total_generated
          : 0.0;
  return result;
}

}  // namespace smoother::sim
