#include "smoother/sim/experiments.hpp"

#include "smoother/runtime/sweep_runner.hpp"

namespace smoother::sim {

core::SmootherConfig default_config(util::Kilowatts installed_capacity) {
  core::SmootherConfig config;
  config.rated_power = installed_capacity;
  // Battery: max rate = half the installed capacity; capacity sustains one
  // 5-minute point at that rate (the paper's sizing); lossless cells.
  config.battery = battery::spec_for_max_rate(installed_capacity * 0.5,
                                              util::kFiveMinutes);
  config.battery.charge_efficiency = 1.0;
  config.battery.discharge_efficiency = 1.0;
  // Region-I = bottom 25 % of the variance CDF (flat intervals), and
  // Region-II-2 = top 5 % (the paper's choice). The 25 % split trades more
  // battery charge/discharge activity for markedly fewer switches — the
  // Fig. 6 trade-off; bench/fig06_threshold_sweep sweeps it.
  config.stable_cdf = 0.25;
  config.extreme_cdf = 0.95;
  return config;
}

SwitchingComparison run_switching_comparison(
    const util::TimeSeries& supply, const util::TimeSeries& demand,
    const core::SmootherConfig& config) {
  SwitchingComparison result;

  // Arm 1: raw supply, no storage.
  result.without_fs =
      dispatch(supply, demand, DispatchPolicy::kDirect).switching_times;

  // Arm 2: raw supply + Multigreen-style battery.
  {
    battery::Battery comp_battery(config.battery,
                                  config.initial_soc_fraction);
    result.with_comp =
        dispatch(supply, demand, DispatchPolicy::kComp, &comp_battery)
            .switching_times;
  }

  // Arm 3: Flexible Smoothing.
  {
    core::SmootherConfig fs_config = config;
    fs_config.enable_flexible_smoothing = true;
    const core::Smoother middleware(fs_config);
    const core::SmoothingResult smoothing = middleware.smooth_supply(supply);
    result.with_fs =
        dispatch(smoothing.supply, demand, DispatchPolicy::kDirect)
            .switching_times;
    result.fs_required_max_rate_kw = smoothing.required_max_rate_kw;
    result.fs_smoothed_intervals =
        static_cast<double>(smoothing.smoothed_intervals);
  }
  return result;
}

UtilizationComparison run_utilization_comparison(
    const BatchScenario& scenario, const core::SmootherConfig& config) {
  UtilizationComparison result;

  core::SmootherConfig with_ad = config;
  with_ad.enable_active_delay = true;
  const core::RunReport ad_report =
      core::Smoother(with_ad).run(scenario.supply, scenario.jobs,
                                  scenario.total_servers, util::kOneMinute);
  result.with_ad = ad_report.renewable_utilization;
  result.deadline_misses_with = ad_report.schedule.outcome.deadline_misses;

  core::SmootherConfig without_ad = config;
  without_ad.enable_active_delay = false;
  const core::RunReport immediate_report =
      core::Smoother(without_ad).run(scenario.supply, scenario.jobs,
                                     scenario.total_servers,
                                     util::kOneMinute);
  result.without_ad = immediate_report.renewable_utilization;
  result.deadline_misses_without =
      immediate_report.schedule.outcome.deadline_misses;
  return result;
}

CombinedComparison run_combined_comparison(
    const BatchScenario& scenario, const core::SmootherConfig& config) {
  CombinedComparison result;

  core::SmootherConfig no_fs = config;
  no_fs.enable_flexible_smoothing = false;
  no_fs.enable_active_delay = true;
  result.without_fs =
      core::Smoother(no_fs)
          .run(scenario.supply, scenario.jobs, scenario.total_servers,
               util::kOneMinute)
          .switching_times;

  core::SmootherConfig with_fs = config;
  with_fs.enable_flexible_smoothing = true;
  with_fs.enable_active_delay = true;
  result.with_fs =
      core::Smoother(with_fs)
          .run(scenario.supply, scenario.jobs, scenario.total_servers,
               util::kOneMinute)
          .switching_times;
  return result;
}

std::vector<TimedComparison<SwitchingComparison>> run_switching_comparisons(
    const std::vector<WebScenario>& scenarios,
    const core::SmootherConfig& config, std::size_t threads) {
  runtime::SweepRunner runner(
      runtime::SweepOptions{threads, 0, "switching-comparisons"});
  auto results = runner.run(
      scenarios.size(),
      [&scenarios, &config](runtime::TaskContext& ctx) {
        const WebScenario& scenario = scenarios[ctx.index];
        return run_switching_comparison(scenario.supply, scenario.demand,
                                        config);
      });
  std::vector<TimedComparison<SwitchingComparison>> out;
  out.reserve(results.size());
  for (auto& result : results)
    out.push_back({scenarios[result.index].name, result.value,
                   result.wall_ms});
  return out;
}

std::vector<TimedComparison<UtilizationComparison>>
run_utilization_comparisons(const std::vector<BatchScenario>& scenarios,
                            const core::SmootherConfig& config,
                            std::size_t threads) {
  runtime::SweepRunner runner(
      runtime::SweepOptions{threads, 0, "utilization-comparisons"});
  auto results = runner.run(
      scenarios.size(),
      [&scenarios, &config](runtime::TaskContext& ctx) {
        return run_utilization_comparison(scenarios[ctx.index], config);
      });
  std::vector<TimedComparison<UtilizationComparison>> out;
  out.reserve(results.size());
  for (auto& result : results)
    out.push_back({scenarios[result.index].name, result.value,
                   result.wall_ms});
  return out;
}

}  // namespace smoother::sim
