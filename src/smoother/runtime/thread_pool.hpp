// Work-stealing thread pool: the execution engine behind Smoother's
// parallel sweeps and benches.
//
// Structure (Chase–Lev discipline, mutex-guarded deques):
//   * one deque per worker; the owner pushes and pops at the *bottom*
//     (LIFO, keeps the hot task cache-warm), thieves steal from the *top*
//     (FIFO, takes the oldest — usually largest — piece of work);
//   * idle workers park on a condition variable and are woken by submits;
//   * shutdown is graceful: the destructor lets every already-submitted
//     task run to completion before joining.
//
// Parking protocol (audited for the missed-wakeup window between a
// worker's empty-deque sweep and its CV wait; pool_stress re-runs the
// audit's adversarial schedule under TSan):
//   * queued_ is the wait predicate: push() increments it *before* its
//     wake-up step, workers re-check it under park_mutex_ inside
//     park_cv_.wait. A worker that swept empty deques, lost the race to a
//     concurrent push and then parks re-evaluates the predicate under the
//     mutex, sees queued_ > 0 and returns without blocking — the sweep
//     result is never trusted across the lock acquisition.
//   * push()'s wake-up step is Dekker-shaped on two seq_cst atomics:
//     publish queued_, then read parked_; a parking worker publishes
//     parked_, then reads queued_ (the predicate). If the pusher skipped
//     notifying (read parked_ == 0) AND the worker blocked (read
//     queued_ == 0), the single total order over seq_cst operations would
//     need each read to precede the other side's write — a cycle — so at
//     least one side sees the other: the pusher notifies, or the worker
//     never blocks. When someone *is* parked, the pusher takes (and
//     releases) park_mutex_ before notify_one so the notify cannot land
//     between a worker's predicate check and its block.
//   * the parked_ == 0 fast path is what keeps fleet-scale submit storms
//     (many tiny tasks from worker threads) off the global park mutex: a
//     busy pool pushes with one uncontended deque lock plus two atomics.
//
// Each per-worker deque is guarded by its own mutex rather than the
// lock-free Chase–Lev protocol: contention is one cheap lock per *task*
// (Smoother's tasks are whole scenario evaluations, micro- to milli-
// seconds each), and the mutex variant is trivially ThreadSanitizer-clean.
//
// Determinism contract: the pool schedules tasks in an unspecified order
// on an unspecified thread. Anything that must be reproducible therefore
// derives its randomness from the *task index* (see task_rng.hpp), never
// from shared mutable state or the executing thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace smoother::runtime {

/// Resolves a requested thread count: 0 means "all hardware threads"
/// (never less than 1).
[[nodiscard]] std::size_t resolve_thread_count(std::size_t requested);

class ThreadPool {
 public:
  /// Starts `thread_count` workers (0 = hardware_concurrency).
  explicit ThreadPool(std::size_t thread_count = 0);

  /// Graceful shutdown: every task submitted before destruction runs to
  /// completion (including tasks those tasks submit), then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return queues_.size(); }

  /// Schedules `f(args...)` and returns a future for its result. An
  /// exception thrown by the task is captured and rethrown by
  /// `future.get()`.
  template <class F, class... Args>
  auto submit(F&& f, Args&&... args)
      -> std::future<std::invoke_result_t<std::decay_t<F>, std::decay_t<Args>...>> {
    using R = std::invoke_result_t<std::decay_t<F>, std::decay_t<Args>...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<F>(f),
         ... captured = std::forward<Args>(args)]() mutable -> R {
          return std::invoke(std::move(fn), std::move(captured)...);
        });
    std::future<R> future = task->get_future();
    push([task] { (*task)(); });
    return future;
  }

  /// Calls `fn(i)` for every i in [0, n), distributed over the pool; the
  /// calling thread participates, so the call also works from inside a
  /// pool task (nested parallelism) and on a pool whose workers are all
  /// busy. Blocks until every index ran. The first exception thrown by any
  /// `fn(i)` is rethrown here (remaining indices are skipped; in-flight
  /// ones finish).
  template <class F>
  void parallel_for(std::size_t n, F&& fn) {
    if (n == 0) return;
    struct State {
      std::atomic<std::size_t> next{0};
      std::atomic<std::size_t> finished_runners{0};
      std::atomic<bool> failed{false};
      std::mutex error_mutex;
      std::exception_ptr error;
    };
    auto state = std::make_shared<State>();
    // The caller outlives the loop (it blocks below), so runners may hold
    // plain references to fn.
    auto body = [state, &fn, n] {
      std::size_t i = 0;
      while (!state->failed.load() && (i = state->next.fetch_add(1)) < n) {
        try {
          fn(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(state->error_mutex);
          if (!state->error) state->error = std::current_exception();
          state->failed.store(true);
        }
      }
    };
    // One runner per worker (capped by n); the caller is an extra runner.
    const std::size_t runners = std::min(worker_count(), n);
    for (std::size_t r = 0; r < runners; ++r) {
      push([state, body] {
        body();
        state->finished_runners.fetch_add(1);
      });
    }
    body();
    // Help drain the pool while waiting so nested parallel_for calls and
    // fully-busy pools make progress instead of deadlocking.
    help_while([&] { return state->finished_runners.load() == runners; });
    if (state->error) std::rethrow_exception(state->error);
  }

  /// parallel_for that collects `fn(i)` into a vector ordered by index.
  template <class F>
  auto parallel_map(std::size_t n, F&& fn)
      -> std::vector<std::invoke_result_t<F&, std::size_t>> {
    using R = std::invoke_result_t<F&, std::size_t>;
    std::vector<std::optional<R>> slots(n);
    parallel_for(n, [&](std::size_t i) { slots[i].emplace(fn(i)); });
    std::vector<R> out;
    out.reserve(n);
    for (auto& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

  /// Runs queued tasks on the calling thread until `done()` returns true.
  /// Safe from worker threads and external threads alike; the building
  /// block for blocking on pool work without occupying a worker.
  template <class Pred>
  void help_while(Pred done) {
    while (!done()) {
      if (!run_pending_task()) std::this_thread::yield();
    }
  }

  /// Pops (or steals) one queued task and runs it on the calling thread.
  /// Returns false when no task was available.
  bool run_pending_task();

  /// Cumulative scheduling statistics since construction. Per-worker
  /// executed/stolen tallies plus an "external" slot for non-worker
  /// threads helping via run_pending_task()/parallel_for(). The counts are
  /// exact but scheduling-dependent (which worker ran which task is not
  /// deterministic); consumers must treat them as diagnostics, never as
  /// part of a reproducible result.
  [[nodiscard]] std::uint64_t tasks_executed(std::size_t worker) const {
    return stats_[worker]->executed.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t tasks_stolen(std::size_t worker) const {
    return stats_[worker]->stolen.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t external_tasks_executed() const {
    return external_stats_.executed.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t external_tasks_stolen() const {
    return external_stats_.stolen.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_tasks_executed() const;
  [[nodiscard]] std::uint64_t total_tasks_stolen() const;

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  /// Padded to a cache line so one worker's tally never false-shares with
  /// its neighbour's.
  struct alignas(64) WorkerStats {
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
  };

  void count_task(bool stolen);
  void push(std::function<void()> task);
  void worker_loop(std::size_t index);
  bool pop_own(std::size_t index, std::function<void()>& out);
  bool steal(std::size_t thief, std::function<void()>& out);
  bool steal_any(std::function<void()>& out);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::unique_ptr<WorkerStats>> stats_;
  WorkerStats external_stats_;
  std::vector<std::thread> workers_;
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  std::atomic<std::size_t> queued_{0};
  /// Workers inside the park_cv_ wait (incremented under park_mutex_ before
  /// the predicate runs). Lets push() skip the fence + notify when nobody
  /// can possibly be blocked; see the parking-protocol file comment.
  std::atomic<std::size_t> parked_{0};
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<bool> stopping_{false};

  // Worker identity of the current thread (set inside worker_loop); lets
  // push() go to the calling worker's own deque bottom.
  static thread_local const ThreadPool* tl_pool_;
  static thread_local std::size_t tl_index_;
};

}  // namespace smoother::runtime
