#include "smoother/runtime/sweep_runner.hpp"

namespace smoother::runtime {

double ParamGrid::Point::operator[](const std::string& name) const {
  for (const auto& [axis_name, value] : values)
    if (axis_name == name) return value;
  throw std::out_of_range("ParamGrid::Point: unknown axis '" + name + "'");
}

ParamGrid& ParamGrid::axis(std::string name, std::vector<double> values) {
  if (values.empty())
    throw std::invalid_argument("ParamGrid: axis '" + name + "' is empty");
  axes_.emplace_back(std::move(name), std::move(values));
  return *this;
}

std::size_t ParamGrid::size() const {
  if (axes_.empty()) return 0;
  std::size_t product = 1;
  for (const auto& [name, values] : axes_) product *= values.size();
  return product;
}

void SweepRunner::publish_metrics(std::size_t task_count) {
  obs::MetricsRegistry* metrics = obs::global_metrics();
  if (metrics == nullptr) return;
  metrics->counter("runtime.sweep.runs").add(1);
  metrics->counter("runtime.sweep.tasks").add(task_count);
  metrics->timing_histogram("runtime.sweep.wall_ms").record(last_wall_ms_);
  if (!pool_) return;  // serial run: no pool statistics to report
  for (std::size_t w = 0; w < pool_->worker_count(); ++w) {
    const std::string prefix =
        "runtime.pool.worker_" + std::to_string(w) + ".";
    metrics->gauge(prefix + "executed")
        .set(static_cast<double>(pool_->tasks_executed(w)));
    metrics->gauge(prefix + "stolen")
        .set(static_cast<double>(pool_->tasks_stolen(w)));
  }
  metrics->gauge("runtime.pool.external.executed")
      .set(static_cast<double>(pool_->external_tasks_executed()));
  metrics->gauge("runtime.pool.external.stolen")
      .set(static_cast<double>(pool_->external_tasks_stolen()));
  metrics->gauge("runtime.pool.total_executed")
      .set(static_cast<double>(pool_->total_tasks_executed()));
  metrics->gauge("runtime.pool.total_stolen")
      .set(static_cast<double>(pool_->total_tasks_stolen()));
}

ParamGrid::Point ParamGrid::at(std::size_t index) const {
  if (index >= size())
    throw std::out_of_range("ParamGrid::at: index past the grid end");
  Point point;
  point.index = index;
  point.values.reserve(axes_.size());
  // Mixed-radix decode, last axis fastest: matches nested for-loops
  // written in axis declaration order.
  std::size_t remainder = index;
  std::size_t stride = size();
  for (const auto& [name, values] : axes_) {
    stride /= values.size();
    const std::size_t digit = remainder / stride;
    remainder %= stride;
    point.values.emplace_back(name, values[digit]);
  }
  return point;
}

}  // namespace smoother::runtime
