#include "smoother/runtime/thread_pool.hpp"

namespace smoother::runtime {

thread_local const ThreadPool* ThreadPool::tl_pool_ = nullptr;
thread_local std::size_t ThreadPool::tl_index_ = 0;

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t thread_count) {
  const std::size_t count = resolve_thread_count(thread_count);
  queues_.reserve(count);
  stats_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    queues_.push_back(std::make_unique<Queue>());
    stats_.push_back(std::make_unique<WorkerStats>());
  }
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  stopping_.store(true);
  {
    // Taking the lock orders the store against a worker's predicate check,
    // so no worker can park after missing the stop signal.
    const std::lock_guard<std::mutex> lock(park_mutex_);
  }
  park_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::push(std::function<void()> task) {
  // A worker submitting to its own pool pushes onto its own deque bottom
  // (LIFO — depth-first, cache-warm); external submitters round-robin
  // across the deques so load starts spread out.
  std::size_t target = 0;
  if (tl_pool_ == this) {
    target = tl_index_;
  } else {
    target = next_queue_.fetch_add(1) % queues_.size();
  }
  {
    const std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1);  // seq_cst: published before the parked_ read below
  // Dekker pairing with worker_loop's park sequence (parked_ ++ then
  // queued_ read): both sides seq_cst, so "pusher sees parked_ == 0" and
  // "worker blocks having seen queued_ == 0" cannot both happen — skipping
  // the notify here is safe exactly when no worker can be committing to
  // block. See the parking-protocol comment in the header.
  if (parked_.load() == 0) return;
  {
    // Empty critical section: orders this push's queued_ increment against
    // any parked worker's predicate evaluation, so the notify below cannot
    // land in the gap between a worker's predicate check and its block.
    const std::lock_guard<std::mutex> lock(park_mutex_);
  }
  park_cv_.notify_one();
}

bool ThreadPool::pop_own(std::size_t index, std::function<void()>& out) {
  Queue& queue = *queues_[index];
  const std::lock_guard<std::mutex> lock(queue.mutex);
  if (queue.tasks.empty()) return false;
  out = std::move(queue.tasks.back());  // owner end: bottom (LIFO)
  queue.tasks.pop_back();
  queued_.fetch_sub(1);
  return true;
}

bool ThreadPool::steal(std::size_t thief, std::function<void()>& out) {
  const std::size_t count = queues_.size();
  for (std::size_t offset = 1; offset < count; ++offset) {
    Queue& victim = *queues_[(thief + offset) % count];
    const std::lock_guard<std::mutex> lock(victim.mutex);
    if (victim.tasks.empty()) continue;
    out = std::move(victim.tasks.front());  // thief end: top (FIFO)
    victim.tasks.pop_front();
    queued_.fetch_sub(1);
    return true;
  }
  return false;
}

bool ThreadPool::steal_any(std::function<void()>& out) {
  for (auto& entry : queues_) {
    const std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->tasks.empty()) continue;
    out = std::move(entry->tasks.front());
    entry->tasks.pop_front();
    queued_.fetch_sub(1);
    return true;
  }
  return false;
}

void ThreadPool::count_task(bool stolen) {
  // Worker threads tally on their own padded slot; helper threads (the
  // blocked caller of parallel_for, external run_pending_task users) share
  // the "external" slot.
  WorkerStats& slot =
      (tl_pool_ == this) ? *stats_[tl_index_] : external_stats_;
  slot.executed.fetch_add(1, std::memory_order_relaxed);
  if (stolen) slot.stolen.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t ThreadPool::total_tasks_executed() const {
  std::uint64_t total = external_tasks_executed();
  for (std::size_t i = 0; i < stats_.size(); ++i) total += tasks_executed(i);
  return total;
}

std::uint64_t ThreadPool::total_tasks_stolen() const {
  std::uint64_t total = external_tasks_stolen();
  for (std::size_t i = 0; i < stats_.size(); ++i) total += tasks_stolen(i);
  return total;
}

bool ThreadPool::run_pending_task() {
  std::function<void()> task;
  bool stolen = false;
  bool found = false;
  if (tl_pool_ == this) {
    found = pop_own(tl_index_, task);
    if (!found) found = stolen = steal(tl_index_, task);
  } else {
    found = stolen = steal_any(task);
  }
  if (!found) return false;
  count_task(stolen);
  task();
  return true;
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool_ = this;
  tl_index_ = index;
  for (;;) {
    std::function<void()> task;
    bool stolen = false;
    if (pop_own(index, task) || (stolen = steal(index, task))) {
      count_task(stolen);
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(park_mutex_);
    // Count ourselves parked *before* the predicate runs (wait() evaluates
    // it once before ever blocking): from here until the decrement a racing
    // push() either sees parked_ > 0 and notifies through the mutex, or we
    // see its queued_ increment and do not block. Over-counting is benign —
    // a worker that turns out not to block just earns a spurious notify.
    parked_.fetch_add(1);
    park_cv_.wait(lock, [this] {
      return stopping_.load() || queued_.load() > 0;
    });
    parked_.fetch_sub(1);
    // Graceful shutdown: only exit once every queued task has been taken;
    // tasks still *executing* on other workers may push more, which keeps
    // queued_ > 0 and keeps us alive until the pool is truly drained.
    if (stopping_.load() && queued_.load() == 0) return;
  }
}

}  // namespace smoother::runtime
