// SweepRunner: parallel execution of named parameter grids.
//
// The unit of work is one grid point (one scenario evaluation). The runner
// executes points on a work-stealing ThreadPool, hands each task its own
// deterministic Rng stream (TaskRng), captures per-task wall time, and
// collects results *ordered by grid index* — so the output of a sweep is
// byte-identical at --threads 1 and --threads 64, and a serial run is just
// the degenerate single-thread case.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "smoother/obs/metrics.hpp"
#include "smoother/obs/trace.hpp"
#include "smoother/runtime/task_rng.hpp"
#include "smoother/runtime/thread_pool.hpp"

namespace smoother::runtime {

/// Cartesian product of named value axes, enumerated in nested-loop order
/// (the first axis varies slowest) so a sweep's index order matches the
/// serial for-loops it replaces.
class ParamGrid {
 public:
  /// One enumerated grid point: the value of every axis plus its index.
  struct Point {
    std::size_t index = 0;
    std::vector<std::pair<std::string, double>> values;

    /// Axis value by name; throws std::out_of_range for unknown names.
    [[nodiscard]] double operator[](const std::string& name) const;
  };

  /// Appends an axis. Returns *this so grids read as a builder chain.
  ParamGrid& axis(std::string name, std::vector<double> values);

  /// Number of grid points (product of axis sizes; 0 with no axes).
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] std::size_t axis_count() const { return axes_.size(); }

  /// Decodes the point at `index` (mixed-radix, first axis slowest).
  [[nodiscard]] Point at(std::size_t index) const;

 private:
  std::vector<std::pair<std::string, std::vector<double>>> axes_;
};

/// Everything a sweep task may depend on besides its parameters: its grid
/// index and its private deterministic random stream.
struct TaskContext {
  std::size_t index = 0;
  util::Rng rng;
};

/// One collected task result.
template <class T>
struct SweepResult {
  std::size_t index;
  double wall_ms;  ///< this task's own wall time
  T value;
};

struct SweepOptions {
  std::size_t threads = 0;  ///< 0 = hardware_concurrency; 1 = strictly serial
  std::uint64_t seed = 0;   ///< root seed for per-task Rng streams
  std::string name;         ///< sweep label for logs/JSON
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {})
      : options_(std::move(options)) {}

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  [[nodiscard]] std::size_t threads() const {
    return options_.threads == 1 ? 1 : resolve_thread_count(options_.threads);
  }

  [[nodiscard]] const std::string& name() const { return options_.name; }

  /// Wall time of the most recent run()/run_grid() call, in milliseconds.
  [[nodiscard]] double last_wall_ms() const { return last_wall_ms_; }

  /// Executes fn(ctx) for task indices [0, task_count); returns results
  /// ordered by index. With threads == 1 the tasks run in index order on
  /// the calling thread (no pool) — the serial baseline. Exceptions from
  /// tasks propagate (first one wins).
  template <class F>
  auto run(std::size_t task_count, F&& fn)
      -> std::vector<SweepResult<std::invoke_result_t<F&, TaskContext&>>> {
    using T = std::invoke_result_t<F&, TaskContext&>;
    const TaskRng rng(options_.seed);
    // Each task gets a "sweep-task" span. With threads > 1 the spans are
    // emitted in completion order (a multiset, not a sequence — compare
    // traces accordingly); at threads == 1 the trace is byte-stable.
    auto one = [this, &fn, &rng](std::size_t i) -> SweepResult<T> {
      obs::Span span(obs::global_tracer(), "sweep-task");
      span.field("index", i);
      if (!options_.name.empty()) span.field("sweep", options_.name);
      TaskContext ctx{i, rng.for_task(i)};
      const auto start = std::chrono::steady_clock::now();
      T value = fn(ctx);
      const std::chrono::duration<double, std::milli> elapsed =
          std::chrono::steady_clock::now() - start;
      return SweepResult<T>{i, elapsed.count(), std::move(value)};
    };

    const auto sweep_start = std::chrono::steady_clock::now();
    std::vector<SweepResult<T>> results;
    if (threads() == 1) {
      results.reserve(task_count);
      for (std::size_t i = 0; i < task_count; ++i) results.push_back(one(i));
    } else {
      results = pool().parallel_map(task_count, one);
    }
    const std::chrono::duration<double, std::milli> sweep_elapsed =
        std::chrono::steady_clock::now() - sweep_start;
    last_wall_ms_ = sweep_elapsed.count();
    publish_metrics(task_count);
    return results;
  }

  /// Grid variant: fn(point, ctx) per grid point, ordered by grid index.
  template <class F>
  auto run_grid(const ParamGrid& grid, F&& fn)
      -> std::vector<SweepResult<
          std::invoke_result_t<F&, const ParamGrid::Point&, TaskContext&>>> {
    return run(grid.size(), [&grid, &fn](TaskContext& ctx) {
      const ParamGrid::Point point = grid.at(ctx.index);
      return fn(point, ctx);
    });
  }

 private:
  ThreadPool& pool() {
    if (!pool_) pool_ = std::make_unique<ThreadPool>(threads());
    return *pool_;
  }

  /// Publishes sweep/pool statistics to the installed registry (no-op when
  /// none is installed). Task and run counts are deterministic; wall times
  /// go to a timing histogram and the pool's per-worker executed/stolen
  /// tallies are scheduling-dependent diagnostics (gauges of cumulative
  /// counts).
  void publish_metrics(std::size_t task_count);

  SweepOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  double last_wall_ms_ = 0.0;
};

}  // namespace smoother::runtime
