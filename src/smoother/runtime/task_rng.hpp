// Deterministic per-task random streams.
//
// A parallel sweep must produce bit-identical results whether it runs on
// 1 thread or 64, and regardless of which worker executes which task. A
// shared Rng cannot deliver that — draw order would depend on scheduling.
// TaskRng instead *splits* the root seed into one independent stream per
// task index (util::Rng::split, a pure function of (seed, index)), the
// approach FoundationDB's deterministic simulation popularised: randomness
// is keyed by logical identity, never by execution order.
#pragma once

#include <cstdint>

#include "smoother/util/rng.hpp"

namespace smoother::runtime {

class TaskRng {
 public:
  explicit TaskRng(std::uint64_t root_seed) : root_seed_(root_seed) {}

  [[nodiscard]] std::uint64_t root_seed() const { return root_seed_; }

  /// The independent stream for one task. Pure: any thread may call this
  /// concurrently, and the result depends only on (root_seed, task_index).
  [[nodiscard]] util::Rng for_task(std::uint64_t task_index) const {
    return util::Rng(root_seed_).split(task_index);
  }

  /// A named sub-stream within one task, for tasks that need several
  /// independent generators (e.g. one per wind site).
  [[nodiscard]] util::Rng for_task(std::uint64_t task_index,
                                   std::uint64_t substream) const {
    return util::Rng(root_seed_).split(task_index).split(substream);
  }

 private:
  std::uint64_t root_seed_;
};

}  // namespace smoother::runtime
