#include "smoother/core/multi_esd.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "smoother/stats/descriptive.hpp"

namespace smoother::core {

double MultiEsdPlan::net_kwh(std::size_t i) const {
  double net = 0.0;
  for (const auto& schedule : schedules_kwh) net += schedule.at(i);
  return net;
}

MultiEsdSmoothing::MultiEsdSmoothing(FlexibleSmoothingConfig config)
    : config_(config) {
  config_.validate();
  if (config_.lookahead_intervals != 1)
    throw std::invalid_argument(
        "MultiEsdSmoothing: receding horizon not supported (lookahead must "
        "be 1)");
}

MultiEsdPlan MultiEsdSmoothing::plan_interval(
    const util::TimeSeries& generation, const battery::EsdBank& bank) const {
  const std::size_t m = generation.size();
  if (m < 2)
    throw std::invalid_argument(
        "MultiEsdSmoothing::plan_interval: need at least 2 samples");
  const std::size_t d_count = bank.size();
  if (d_count == 0)
    throw std::invalid_argument("MultiEsdSmoothing: empty ESD bank");
  const double dt_hours = generation.step().value() / 60.0;

  std::vector<double> u(m);
  for (std::size_t i = 0; i < m; ++i)
    u[i] = std::max(generation[i], 0.0) * dt_hours;

  // Objective: Var(u + sum_d s_d). With x device-major, every (d, d')
  // block of P is the same single-device variance form C, and q's block d
  // is C*u.
  const solver::Matrix c =
      config_.objective == SmoothingObjective::kAroundTrend
          ? solver::detrended_variance_quadratic_form(m)
          : solver::variance_quadratic_form(m);
  const std::size_t n = d_count * m;
  solver::QpProblem problem;
  problem.p = solver::Matrix(n, n);
  for (std::size_t bd = 0; bd < d_count; ++bd)
    for (std::size_t bd2 = 0; bd2 < d_count; ++bd2)
      for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < m; ++j)
          problem.p(bd * m + i, bd2 * m + j) = c(i, j);
  const solver::Vector cu = c * u;
  problem.q.resize(n);
  for (std::size_t bd = 0; bd < d_count; ++bd)
    for (std::size_t i = 0; i < m; ++i) problem.q[bd * m + i] = cu[i];

  // Rows: per-device box (d*m), shared net-charge (m), per-device
  // cumulative corridor (d*m).
  const std::size_t rows = 2 * d_count * m + m;
  problem.a = solver::Matrix(rows, n);
  problem.lower.assign(rows, 0.0);
  problem.upper.assign(rows, 0.0);

  double total_discharge_cap = 0.0;
  for (std::size_t bd = 0; bd < d_count; ++bd) {
    const auto& battery = bank.device(bd).battery;
    const auto& spec = battery.spec();
    const double charge_cap = spec.max_charge_rate.value() * dt_hours;
    const double discharge_cap =
        std::min(spec.max_discharge_rate.value() * dt_hours,
                 config_.max_discharge_capacity_fraction *
                     spec.capacity.value());
    total_discharge_cap += discharge_cap;
    const double b0 = battery.energy().value();
    const double cum_lower = b0 - spec.max_energy().value();
    const double cum_upper = b0 - spec.min_energy().value();
    for (std::size_t i = 0; i < m; ++i) {
      // Box row: rate limits only; the generation bound is the shared row.
      const std::size_t box_row = bd * m + i;
      problem.a(box_row, bd * m + i) = 1.0;
      problem.lower[box_row] = -charge_cap;
      problem.upper[box_row] = discharge_cap;
      // Cumulative row for this device.
      const std::size_t cum_row = d_count * m + m + bd * m + i;
      for (std::size_t t = 0; t <= i; ++t)
        problem.a(cum_row, bd * m + t) = 1.0;
      problem.lower[cum_row] = std::min(cum_lower, 0.0);
      problem.upper[cum_row] = std::max(cum_upper, 0.0);
    }
  }
  // Shared net rows: -u_i <= sum_d s_di <= total discharge cap.
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t net_row = d_count * m + i;
    for (std::size_t bd = 0; bd < d_count; ++bd)
      problem.a(net_row, bd * m + i) = 1.0;
    problem.lower[net_row] = -u[i];
    problem.upper[net_row] = total_discharge_cap;
  }

  const solver::QpResult solution = solver::solve_qp(problem, config_.qp);

  MultiEsdPlan plan;
  plan.solver_status = solution.status;
  plan.variance_before = generation.variance();
  plan.schedules_kwh.assign(d_count, std::vector<double>(m, 0.0));
  plan.max_rate_kw.assign(d_count, 0.0);
  if (solution.status == solver::QpStatus::kSolved ||
      solution.status == solver::QpStatus::kMaxIterations) {
    for (std::size_t bd = 0; bd < d_count; ++bd) {
      for (std::size_t i = 0; i < m; ++i) {
        const std::size_t box_row = bd * m + i;
        plan.schedules_kwh[bd][i] =
            std::clamp(solution.x[bd * m + i], problem.lower[box_row],
                       problem.upper[box_row]);
        plan.max_rate_kw[bd] = std::max(
            plan.max_rate_kw[bd], std::abs(plan.schedules_kwh[bd][i]) /
                                      dt_hours);
      }
    }
  }

  std::vector<double> smoothed_kw(m);
  for (std::size_t i = 0; i < m; ++i)
    smoothed_kw[i] = generation[i] + plan.net_kwh(i) / dt_hours;
  plan.variance_after = stats::variance(smoothed_kw);
  return plan;
}

util::TimeSeries MultiEsdSmoothing::execute_plan(
    const MultiEsdPlan& plan, const util::TimeSeries& generation,
    battery::EsdBank& bank) const {
  const std::size_t m = generation.size();
  if (plan.schedules_kwh.size() != bank.size())
    throw std::invalid_argument(
        "MultiEsdSmoothing::execute_plan: device count mismatch");
  for (const auto& schedule : plan.schedules_kwh)
    if (schedule.size() < m)
      throw std::invalid_argument(
          "MultiEsdSmoothing::execute_plan: plan shorter than the window");

  const double dt_hours = generation.step().value() / 60.0;
  util::TimeSeries supply(generation.step(), m);
  for (std::size_t i = 0; i < m; ++i) {
    // Execute charges before discharges so intra-bank transfers settle.
    double net_flow = 0.0;
    double charge_budget = generation[i];  // kW available to charge from
    for (std::size_t bd = 0; bd < bank.size(); ++bd) {
      const double requested_kw = plan.schedules_kwh[bd][i] / dt_hours;
      if (requested_kw >= 0.0) continue;
      const double capped =
          std::max(requested_kw, -std::max(charge_budget, 0.0));
      const util::Kilowatts actual = bank.device(bd).battery.apply_signed(
          util::Kilowatts{capped}, generation.step());
      net_flow += actual.value();
      charge_budget += actual.value();  // actual is negative
    }
    for (std::size_t bd = 0; bd < bank.size(); ++bd) {
      const double requested_kw = plan.schedules_kwh[bd][i] / dt_hours;
      if (requested_kw < 0.0) continue;
      const util::Kilowatts actual = bank.device(bd).battery.apply_signed(
          util::Kilowatts{requested_kw}, generation.step());
      net_flow += actual.value();
    }
    supply[i] = std::max(generation[i] + net_flow, 0.0);
  }
  return supply;
}

MultiEsdResult MultiEsdSmoothing::smooth(const util::TimeSeries& generation,
                                         const RegionClassifier& classifier,
                                         battery::EsdBank& bank) const {
  if (classifier.config().points_per_interval != config_.points_per_interval)
    throw std::invalid_argument(
        "MultiEsdSmoothing::smooth: classifier interval length differs");

  MultiEsdResult result;
  result.supply = generation;
  result.device_max_rate_kw.assign(bank.size(), 0.0);
  result.device_throughput_kwh.assign(bank.size(), 0.0);
  const std::size_t m = config_.points_per_interval;
  const std::size_t interval_count = generation.size() / m;
  double reduction_sum = 0.0;

  for (std::size_t k = 0; k < interval_count; ++k) {
    const std::size_t first = k * m;
    const util::TimeSeries window = generation.slice(first, m);
    const IntervalClass interval = classifier.classify_window(window, first);
    result.intervals.push_back(interval);
    if (interval.region != Region::kSmoothable) continue;

    const MultiEsdPlan plan = plan_interval(window, bank);
    const util::TimeSeries smoothed = execute_plan(plan, window, bank);
    for (std::size_t i = 0; i < smoothed.size(); ++i)
      result.supply[first + i] = smoothed[i];
    ++result.smoothed_intervals;
    if (window.variance() > 0.0)
      reduction_sum +=
          (window.variance() - smoothed.variance()) / window.variance();
    for (std::size_t bd = 0; bd < bank.size(); ++bd) {
      result.device_max_rate_kw[bd] =
          std::max(result.device_max_rate_kw[bd], plan.max_rate_kw[bd]);
      for (double s : plan.schedules_kwh[bd])
        result.device_throughput_kwh[bd] += std::abs(s);
    }
  }
  result.mean_variance_reduction =
      result.smoothed_intervals > 0
          ? reduction_sum / static_cast<double>(result.smoothed_intervals)
          : 0.0;
  return result;
}

}  // namespace smoother::core
