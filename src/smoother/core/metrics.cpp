#include "smoother/core/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace smoother::core {

namespace {
void require_same_shape(const util::TimeSeries& a, const util::TimeSeries& b) {
  if (a.step() != b.step() || a.size() != b.size())
    throw std::invalid_argument("metrics: series shape mismatch");
}
}  // namespace

std::size_t energy_switching_times(const util::TimeSeries& supply,
                                   const util::TimeSeries& demand) {
  return energy_switching_times_hysteresis(supply, demand, 0.0);
}

std::size_t energy_switching_times_hysteresis(const util::TimeSeries& supply,
                                              const util::TimeSeries& demand,
                                              double deadband) {
  require_same_shape(supply, demand);
  if (deadband < 0.0)
    throw std::invalid_argument("metrics: deadband must be >= 0");
  if (supply.empty()) return 0;

  std::size_t switches = 0;
  bool on_wind = supply[0] >= demand[0];
  for (std::size_t i = 1; i < supply.size(); ++i) {
    const double up_threshold = demand[i] * (1.0 + deadband);
    const double down_threshold = demand[i] * (1.0 - deadband);
    if (!on_wind && supply[i] >= up_threshold) {
      on_wind = true;
      ++switches;
    } else if (on_wind && supply[i] < down_threshold) {
      on_wind = false;
      ++switches;
    }
  }
  return switches;
}

util::KilowattHours renewable_energy_used(const util::TimeSeries& supply,
                                          const util::TimeSeries& demand) {
  require_same_shape(supply, demand);
  return elementwise_min(supply, demand).total_energy();
}

double renewable_utilization(const util::TimeSeries& supply,
                             const util::TimeSeries& demand) {
  const util::KilowattHours generated = supply.total_energy();
  if (generated <= util::KilowattHours{0.0}) return 0.0;
  return renewable_energy_used(supply, demand) / generated;
}

util::KilowattHours unusable_renewable(const util::TimeSeries& supply,
                                       const util::TimeSeries& demand) {
  require_same_shape(supply, demand);
  util::TimeSeries excess(supply.step(), supply.size());
  for (std::size_t i = 0; i < supply.size(); ++i)
    excess[i] = std::max(supply[i] - demand[i], 0.0);
  return excess.total_energy();
}

util::KilowattHours grid_energy_needed(const util::TimeSeries& supply,
                                       const util::TimeSeries& demand) {
  require_same_shape(supply, demand);
  util::TimeSeries deficit(supply.step(), supply.size());
  for (std::size_t i = 0; i < supply.size(); ++i)
    deficit[i] = std::max(demand[i] - supply[i], 0.0);
  return deficit.total_energy();
}

double max_ramp_rate_kw_per_min(const util::TimeSeries& series) {
  if (series.size() < 2) return 0.0;
  double worst = 0.0;
  for (std::size_t i = 1; i < series.size(); ++i)
    worst = std::max(worst, std::abs(series[i] - series[i - 1]));
  return worst / series.step().value();
}

}  // namespace smoother::core
