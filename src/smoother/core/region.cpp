#include "smoother/core/region.hpp"

#include <array>
#include <stdexcept>

#include "smoother/power/capacity_factor.hpp"
#include "smoother/stats/cdf.hpp"
#include "smoother/stats/descriptive.hpp"

namespace smoother::core {

std::string to_string(Region region) {
  switch (region) {
    case Region::kStable:
      return "Region-I";
    case Region::kSmoothable:
      return "Region-II-1";
    case Region::kExtreme:
      return "Region-II-2";
  }
  return "?";
}

void RegionThresholds::validate() const {
  if (stable_below < 0.0 || !(stable_below < extreme_above))
    throw std::invalid_argument(
        "RegionThresholds: need 0 <= stable_below < extreme_above");
}

RegionThresholds thresholds_from_history(const util::TimeSeries& power_history,
                                         util::Kilowatts rated_power,
                                         std::size_t points_per_interval,
                                         double stable_cdf,
                                         double extreme_cdf, bool detrend) {
  if (!(0.0 <= stable_cdf && stable_cdf < extreme_cdf && extreme_cdf <= 1.0))
    throw std::invalid_argument(
        "thresholds_from_history: need 0 <= stable < extreme <= 1");
  std::vector<double> variances;
  if (detrend) {
    const util::TimeSeries cf =
        power::capacity_factor_series(power_history, rated_power);
    if (points_per_interval == 0)
      throw std::invalid_argument("thresholds_from_history: empty interval");
    for (std::size_t first = 0; first + points_per_interval <= cf.size();
         first += points_per_interval)
      variances.push_back(stats::detrended_variance(
          cf.values().subspan(first, points_per_interval)));
  } else {
    variances = power::interval_capacity_factor_variances(
        power_history, rated_power, points_per_interval);
  }
  if (variances.empty())
    throw std::invalid_argument(
        "thresholds_from_history: history shorter than one interval");
  const stats::EmpiricalCdf cdf(variances);
  RegionThresholds thresholds;
  thresholds.stable_below = cdf.value_at(stable_cdf);
  thresholds.extreme_above = cdf.value_at(extreme_cdf);
  if (!(thresholds.stable_below < thresholds.extreme_above)) {
    // Degenerate history (e.g. constant supply): fall back to an epsilon
    // split so the classifier still validates.
    thresholds.extreme_above = thresholds.stable_below + 1e-12;
  }
  return thresholds;
}

RegionClassifier::RegionClassifier(RegionClassifierConfig config)
    : config_(std::move(config)) {
  if (config_.points_per_interval < 2)
    throw std::invalid_argument(
        "RegionClassifier: need at least 2 points per interval");
  if (config_.rated_power <= util::Kilowatts{0.0})
    throw std::invalid_argument("RegionClassifier: rated power must be > 0");
  config_.thresholds.validate();
}

Region RegionClassifier::classify_variance(double cf_variance) const {
  if (cf_variance < config_.thresholds.stable_below) return Region::kStable;
  if (cf_variance >= config_.thresholds.extreme_above) return Region::kExtreme;
  return Region::kSmoothable;
}

std::vector<IntervalClass> RegionClassifier::classify(
    const util::TimeSeries& power) const {
  const std::size_t m = config_.points_per_interval;
  std::vector<IntervalClass> out;
  out.reserve(power.size() / m);
  for (std::size_t first = 0; first + m <= power.size(); first += m)
    out.push_back(classify_window(power.slice(first, m), first));
  return out;
}

IntervalClass RegionClassifier::classify_window(
    const util::TimeSeries& window, std::size_t first_point) const {
  if (window.size() != config_.points_per_interval)
    throw std::invalid_argument(
        "RegionClassifier::classify_window: wrong window length");
  IntervalClass ic;
  ic.first_point = first_point;
  ic.points = window.size();
  const util::TimeSeries cf =
      power::capacity_factor_series(window, config_.rated_power);
  ic.cf_variance = config_.detrend
                       ? stats::detrended_variance(cf.values())
                       : cf.variance();
  ic.region = classify_variance(ic.cf_variance);
  return ic;
}

std::array<double, 3> RegionClassifier::region_fractions(
    const std::vector<IntervalClass>& intervals) {
  std::array<double, 3> fractions{0.0, 0.0, 0.0};
  if (intervals.empty()) return fractions;
  for (const auto& ic : intervals)
    fractions[static_cast<std::size_t>(ic.region)] += 1.0;
  for (double& f : fractions) f /= static_cast<double>(intervals.size());
  return fractions;
}

}  // namespace smoother::core
