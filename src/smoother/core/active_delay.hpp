// Active Delay (paper Section III-D, Algorithm 1).
//
// Active Delay defers batch jobs inside their slack window so their
// execution overlaps the (smoothed) renewable supply as much as possible.
// Per small time slot it:
//
//   1. pulls newly arrived requests from requestJob, computes each job's
//      power demand (calWorkloadPower) and pushes it into queueJob ordered
//      by ascending slack time (deadline - runtime - now);
//   2. pops jobs in that order; a job with positive slack is evaluated at
//      every feasible start time inside its slack window and started where
//      it would consume the most renewable energy (lines 13-17); a job
//      without slack starts immediately (lines 19-21);
//   3. after each decision, the remaining renewable profile is updated
//      (updateRemainRPower, line 18) so later jobs see only what is left.
//
// The candidate evaluation uses a sliding window over
// g(t) = min(remaining_renewable(t), job_power), so scheduling one job is
// O(window + runtime) instead of O(window * runtime).
#pragma once

#include "smoother/sched/scheduler.hpp"

namespace smoother::core {

/// Active Delay tuning.
struct ActiveDelayConfig {
  /// Start-time ties (equal renewable gain) break toward the earliest
  /// start; setting this to false breaks toward the latest.
  bool prefer_early_on_tie = true;

  /// Price-aware extension (the "electricity price is low" half of the
  /// deferral idea in the paper's related work [4,19,20]): when > 0, each
  /// candidate slot's score gains `offpeak_weight * job_power` if the slot
  /// falls outside the peak window, so grid-bound work drifts off-peak.
  /// At 0 (default) the scheduler is exactly the paper's Algorithm 1:
  /// renewable overlap only. Values in (0, 1) keep renewable dominant —
  /// a fully renewable slot always beats a merely off-peak one.
  double offpeak_weight = 0.0;
  double peak_start_hour = 8.0;  ///< peak window [start, end), wall clock
  double peak_end_hour = 22.0;

  /// Peak-shaving extension (EBuff-style, related work [37]): when > 0,
  /// candidate start times that would push the *grid* draw
  /// (scheduled demand + this job - renewable) above this cap in any slot
  /// are skipped. Deters the demand-charge blow-up that aggressive
  /// deferral can cause. Jobs that fit nowhere under the cap fall back to
  /// the uncapped earliest start (the deadline still wins over the cap).
  /// 0 disables the cap.
  double max_grid_draw_kw = 0.0;

  /// Throws std::invalid_argument on a negative weight, weight >= 1, a
  /// malformed peak window, or a negative grid cap.
  void validate() const;
};

/// The Active Delay scheduler. Implements sched::Scheduler so it is
/// drop-in comparable with the immediate/EDF baselines.
class ActiveDelayScheduler final : public sched::Scheduler {
 public:
  /// Throws std::invalid_argument on an invalid config.
  explicit ActiveDelayScheduler(ActiveDelayConfig config = {});

  [[nodiscard]] std::string name() const override { return "active-delay"; }

  /// Schedules the request's jobs against its renewable series. Per-job
  /// renewable use is recorded in each Placement.
  [[nodiscard]] sched::ScheduleResult schedule(
      const sched::ScheduleRequest& request) const override;

  [[nodiscard]] const ActiveDelayConfig& config() const { return config_; }

 private:
  ActiveDelayConfig config_;
};

}  // namespace smoother::core
