#include "smoother/core/forecast.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "smoother/util/rng.hpp"

namespace smoother::core {

NoisyForecaster::NoisyForecaster(double relative_sd, double bias,
                                 std::uint64_t seed)
    : relative_sd_(relative_sd), bias_(bias), rng_state_(seed) {
  if (relative_sd < 0.0)
    throw std::invalid_argument("NoisyForecaster: sd must be >= 0");
  if (std::abs(bias) >= 1.0)
    throw std::invalid_argument("NoisyForecaster: |bias| must be < 1");
}

util::TimeSeries NoisyForecaster::forecast(const util::TimeSeries& actual) {
  util::Rng rng(rng_state_);
  // Innovation variance such that the AR(1) error's stationary sd is
  // relative_sd.
  const double innovation_sd =
      relative_sd_ * std::sqrt(1.0 - ar_coefficient_ * ar_coefficient_);
  util::TimeSeries out(actual.step(), actual.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    error_state_ =
        ar_coefficient_ * error_state_ + rng.normal(0.0, innovation_sd);
    out[i] = std::max(actual[i] * (1.0 + bias_ + error_state_), 0.0);
  }
  // Advance the stream so successive intervals see fresh noise.
  rng_state_ = rng.engine()();
  return out;
}

}  // namespace smoother::core
