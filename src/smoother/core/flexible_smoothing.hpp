// Flexible Smoothing (paper Section III-C).
//
// At the start of every interval (one hour = m points of 5 minutes),
// Flexible Smoothing computes the battery charge/discharge vector
// S = [s_1 ... s_m] that minimizes the standard deviation of the power
// actually delivered, A = U + S (Eq. 8-9), subject to the battery's
// physical limits (Eq. 10-11):
//
//   * per point, a charge cannot exceed the energy generated at that point
//     and a discharge cannot exceed 90 % of the battery capacity;
//   * the running state of charge stays inside [0.1 M, M];
//   * charge/discharge rate limits are enforced (the paper treats them as
//     implicit in the capacity sizing; here they are explicit box bounds,
//     which subsumes the paper's case).
//
// The minimum-variance objective is a convex quadratic, so the constrained
// nonlinear program the paper hands to MATLAB is solved here exactly as a
// QP via the ADMM solver. Planning is in energy units (kWh per point);
// execution converts back to power and drives the Battery model, which is
// the source of truth for what the schedule actually achieves.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <vector>

#include "smoother/battery/battery.hpp"
#include "smoother/core/forecast.hpp"
#include "smoother/core/region.hpp"
#include "smoother/solver/qp.hpp"
#include "smoother/solver/qp_solver.hpp"
#include "smoother/solver/solver_pool.hpp"
#include "smoother/util/time_series.hpp"
#include "smoother/util/units.hpp"

namespace smoother::core {

/// What the per-interval QP flattens.
enum class SmoothingObjective {
  /// The paper's Eq. 9: minimize the variance of the delivered supply
  /// around the interval mean. Right for wind, whose fluctuation is noise.
  kAroundMean,
  /// Trend-aware extension: minimize the variance around the interval's
  /// least-squares line, so deterministic ramps (the clear-sky solar
  /// envelope, weather-front build-ups) pass through and only the noise on
  /// top is buffered. Pair with RegionClassifierConfig::detrend.
  kAroundTrend,
};

/// Flexible Smoothing configuration.
struct FlexibleSmoothingConfig {
  std::size_t points_per_interval = 12;     ///< m (one hour of 5-min points)
  double max_discharge_capacity_fraction = 0.9;  ///< Eq. 10 discharge cap
  SmoothingObjective objective = SmoothingObjective::kAroundMean;

  /// Receding-horizon extension. The paper plans each hour in isolation,
  /// which leaves level steps at interval boundaries (each hour flattens
  /// to its own mean). With lookahead L > 1 the QP plans over L upcoming
  /// intervals jointly but only the first interval's schedule is executed
  /// before replanning — classic MPC. 1 = the paper's behaviour.
  std::size_t lookahead_intervals = 1;

  solver::QpSettings qp;                    ///< inner solver tuning

  /// Reuse a stateful solver::QpSolver per horizon length: consecutive
  /// intervals of the same length share P and A, so the KKT factorization
  /// is built once and reused for every interval. Bitwise-neutral — the
  /// cached factor is the same matrix a one-shot solve would have computed,
  /// so the ADMM iterates are identical. Disable to force the one-shot
  /// solve_qp path per interval (the warm-start bench's control arm).
  bool reuse_solver = true;

  /// Additionally warm-start each solve from the previous interval's
  /// iterates (requires reuse_solver). This cuts ADMM iterations sharply
  /// (see micro_qp_warmstart) but is NOT bitwise-neutral, and not by
  /// low-order bits: the around-mean variance form is singular along the
  /// all-ones direction (adding a constant to the schedule shifts the mean,
  /// not the variance), so the per-interval QP has a whole segment of
  /// optima and ADMM's limit point depends on its initialization.
  /// Warm-starting selects a different — equally optimal — schedule, which
  /// downstream threshold logic (switching counts) then amplifies. No
  /// tolerance tightening reconciles that, so the batch/figure path keeps
  /// cold iterates by default; the streaming OnlineSmoother path, which has
  /// no byte-exact baseline, enables it.
  bool warm_start = false;

  /// Tag the per-interval QP with its FS structure so the solver takes the
  /// O(m) structured KKT fast path (tridiagonal + rank-one, see
  /// solver/structured_kkt.hpp) instead of the dense O(m³) setup — no dense
  /// P or A is ever materialized, and q is built in the O(m) centered form.
  /// Applies to the kAroundMean objective; kAroundTrend has a rank-two
  /// quadratic form outside the structured shape and always solves densely.
  /// The structured schedule agrees with the dense one within the solver
  /// tolerances (not bitwise — see DESIGN.md §4g); disable to force the
  /// dense path for A/B comparison.
  bool structured_solver = true;

  void validate() const;
};

/// Aggregate lifecycle counters across the per-horizon solver cache (see
/// FlexibleSmoothing::solver_cache_stats).
struct SolverCacheStats {
  std::size_t solvers = 0;             ///< distinct horizon lengths seen
  std::size_t setups = 0;              ///< KKT factorizations built
  std::size_t solves = 0;              ///< ADMM runs through the cache
  std::size_t warm_starts = 0;         ///< solves seeded from a previous one
  std::size_t factorization_reuse = 0; ///< solves that skipped refactorizing
};

/// The planned schedule for one interval.
struct IntervalPlan {
  /// Signed battery energy per point in kWh; positive discharges (paper's
  /// sign convention for S).
  std::vector<double> schedule_kwh;
  double variance_before = 0.0;  ///< Var of U (power, kW^2)
  double variance_after = 0.0;   ///< Var of U + S at the planned schedule
  double max_rate_kw = 0.0;      ///< max |s_i| expressed as power
  solver::QpStatus solver_status = solver::QpStatus::kNumericalError;

  /// Solver telemetry surfaced from the QpResult (all zero when the
  /// interval needed no solve): ADMM iteration count and final residuals.
  std::size_t solver_iterations = 0;
  double solver_primal_residual = 0.0;
  double solver_dual_residual = 0.0;
};

/// A QP-ready interval: everything plan_interval derives from the window
/// before the solve, plus the routing facts the solve and finish steps
/// need. Produced by FlexibleSmoothing::prepare_plan, consumed by
/// solve_prepared / finish_plan — the seam the fleet engine batches across
/// tenants (solver::BatchSolver solves many PreparedPlans with one SoA
/// ADMM loop; see fleet/fleet.hpp).
struct PreparedPlan {
  solver::QpProblem problem;   ///< built exactly as plan_interval builds it
  solver::QpSettings settings; ///< resolved: the override or the config's
  std::size_t m = 0;           ///< horizon length (problem.q.size())
  double dt_hours = 0.0;       ///< energy<->power conversion for this window
  /// plan_interval would route this solve through the reuse cache / shared
  /// pool (reuse_solver on, no override) rather than a one-shot solve_qp.
  bool cached = false;
  /// Safe to hand to solver::BatchSolver instead of the scalar pool route:
  /// structured problem + pooled cold-started solve. A batched lane then
  /// produces what the scalar route produces (bit-identical on
  /// non-reassociating SIMD tiers; see solver/batch_solver.hpp).
  bool batchable = false;
};

/// Result of smoothing a whole series.
struct SmoothingResult {
  util::TimeSeries supply;  ///< power delivered to the system (kW)
  std::vector<IntervalClass> intervals;  ///< region labels per interval
  std::vector<IntervalPlan> plans;       ///< one per interval (empty
                                         ///< schedule when not smoothed)
  double required_max_rate_kw = 0.0;     ///< Fig. 6 "Battery MaxVol"
  std::size_t smoothed_intervals = 0;

  /// Mean per-interval variance reduction over smoothed intervals (0 when
  /// nothing was smoothed).
  [[nodiscard]] double mean_variance_reduction() const;
};

/// Flexible Smoothing engine.
class FlexibleSmoothing {
 public:
  /// Throws std::invalid_argument on bad config.
  explicit FlexibleSmoothing(FlexibleSmoothingConfig config = {});

  [[nodiscard]] const FlexibleSmoothingConfig& config() const {
    return config_;
  }

  /// Plans a window: `generation` holds the generated power samples (kW)
  /// of the upcoming window — one interval (m samples) in the paper's
  /// per-hour mode, or several when called from the receding-horizon path.
  /// `battery` provides capacity, rate limits and the current state of
  /// charge. The battery is not mutated; with `reuse_solver` enabled the
  /// call updates the internal per-horizon solver cache (so repeated calls
  /// warm-start — the schedule still satisfies the same tolerances, but an
  /// instance must not be shared across threads; SweepRunner tasks each
  /// construct their own middleware).
  /// `qp_override`, when non-null, replaces the configured solver settings
  /// for this one plan (live solver retuning; the fault-injection harness
  /// uses it to force non-convergence through the real code path) and
  /// bypasses the solver cache entirely.
  /// Throws std::invalid_argument for windows shorter than 2 samples.
  [[nodiscard]] IntervalPlan plan_interval(
      const util::TimeSeries& generation, const battery::Battery& battery,
      const solver::QpSettings* qp_override = nullptr) const;

  /// The three phases of plan_interval, split so a caller can interpose on
  /// the solve — the fleet engine collects PreparedPlans from many tenants
  /// and solves the batchable ones together through solver::BatchSolver.
  /// plan_interval(g, b, o) is exactly
  ///   finish_plan(p, solve_prepared(p), g) with p = prepare_plan(g, b, o)
  /// (same arithmetic in the same order), so the split path is
  /// bit-identical to the monolithic one whenever the solves agree.
  [[nodiscard]] PreparedPlan prepare_plan(
      const util::TimeSeries& generation, const battery::Battery& battery,
      const solver::QpSettings* qp_override = nullptr) const;

  /// Runs the scalar solve routing plan_interval would run: the per-horizon
  /// cache or shared pool when `prepared.cached`, a one-shot solve_qp
  /// otherwise.
  [[nodiscard]] solver::QpResult solve_prepared(
      const PreparedPlan& prepared) const;

  /// Assembles the IntervalPlan from a solution — however it was obtained
  /// (solve_prepared or a batched lane). `generation` must be the window
  /// prepare_plan saw.
  [[nodiscard]] IntervalPlan finish_plan(const PreparedPlan& prepared,
                                         const solver::QpResult& solution,
                                         const util::TimeSeries& generation)
      const;

  /// Executes a plan against the battery: applies each signed step and
  /// returns the delivered power series (kW), which may deviate from the
  /// plan when battery limits bind (e.g. round-trip losses).
  [[nodiscard]] util::TimeSeries execute_plan(
      const IntervalPlan& plan, const util::TimeSeries& generation,
      battery::Battery& battery) const;

  /// Full pipeline over a supply series: classify every interval with
  /// `classifier`, plan + execute on Region-II-1 intervals, pass the others
  /// through untouched (paper Fig. 5). The battery carries state across
  /// intervals. Planning (and classification) see the true generation —
  /// the paper's implicit perfect-forecast assumption.
  [[nodiscard]] SmoothingResult smooth(const util::TimeSeries& generation,
                                       const RegionClassifier& classifier,
                                       battery::Battery& battery) const;

  /// Same pipeline, but each interval is classified and planned against
  /// `forecaster`'s prediction of that interval, while execution (and the
  /// reported supply) use the actual generation. With PerfectForecaster
  /// this reduces to smooth(); with a noisy forecaster it measures FS's
  /// robustness to prediction error (paper cites 5-10 % models).
  [[nodiscard]] SmoothingResult smooth_with_forecast(
      const util::TimeSeries& generation, const RegionClassifier& classifier,
      battery::Battery& battery, SupplyForecaster& forecaster) const;

  /// Drops the warm-start iterates of every cached solver; the
  /// factorizations stay. Call when the world state diverged from what the
  /// cached duals describe — e.g. after degraded-mode fallback intervals
  /// rewrote the battery trajectory (OnlineSmoother does this on recovery).
  void reset_solver_warm_starts() const;

  /// Aggregate counters over the per-horizon solver cache (all zero when
  /// `reuse_solver` is off, a shared pool is attached, or nothing was
  /// planned yet).
  [[nodiscard]] SolverCacheStats solver_cache_stats() const;

  /// Routes cached solves through an externally-owned solver::SolverPool
  /// instead of the private per-horizon cache, so many FlexibleSmoothing
  /// instances with the same horizon length share one KKT factorization
  /// (the fleet engine's batched planning; see solver/solver_pool.hpp for
  /// the sharing contract). Non-owning — the pool must outlive this
  /// instance and belong to the same single-threaded domain. Null detaches
  /// and restores the private cache.
  /// Throws std::invalid_argument when warm_start is enabled: ADMM iterates
  /// are per-stream state and must never leak across the instances sharing
  /// a pool.
  void set_shared_solver_pool(solver::SolverPool* pool);

  [[nodiscard]] solver::SolverPool* shared_solver_pool() const {
    return shared_pool_;
  }

 private:
  FlexibleSmoothingConfig config_;

  /// One stateful solver per horizon length m. plan_interval is logically
  /// const (same schedule modulo solver tolerance), so the cache is
  /// mutable; it is what makes a FlexibleSmoothing instance single-threaded
  /// when reuse_solver is on.
  mutable std::map<std::size_t, solver::QpSolver> solver_cache_;

  /// Optional shared pool (see set_shared_solver_pool); replaces
  /// solver_cache_ while attached.
  solver::SolverPool* shared_pool_ = nullptr;
};

}  // namespace smoother::core
