#include "smoother/core/flexible_smoothing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "smoother/stats/descriptive.hpp"

namespace smoother::core {

void FlexibleSmoothingConfig::validate() const {
  if (points_per_interval < 2)
    throw std::invalid_argument(
        "FlexibleSmoothingConfig: need >= 2 points per interval");
  if (max_discharge_capacity_fraction <= 0.0 ||
      max_discharge_capacity_fraction > 1.0)
    throw std::invalid_argument(
        "FlexibleSmoothingConfig: discharge fraction in (0,1]");
  if (lookahead_intervals == 0)
    throw std::invalid_argument(
        "FlexibleSmoothingConfig: lookahead must be >= 1 interval");
  if (warm_start && !reuse_solver)
    throw std::invalid_argument(
        "FlexibleSmoothingConfig: warm_start requires reuse_solver");
}

double SmoothingResult::mean_variance_reduction() const {
  double acc = 0.0;
  std::size_t n = 0;
  for (const auto& plan : plans) {
    if (plan.schedule_kwh.empty() || plan.variance_before <= 0.0) continue;
    acc += (plan.variance_before - plan.variance_after) / plan.variance_before;
    ++n;
  }
  return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

FlexibleSmoothing::FlexibleSmoothing(FlexibleSmoothingConfig config)
    : config_(config) {
  config_.validate();
}

void FlexibleSmoothing::set_shared_solver_pool(solver::SolverPool* pool) {
  if (pool != nullptr && config_.warm_start)
    throw std::invalid_argument(
        "FlexibleSmoothing: a shared solver pool requires warm_start off — "
        "ADMM iterates are per-stream state and must not cross instances");
  shared_pool_ = pool;
}

void FlexibleSmoothing::reset_solver_warm_starts() const {
  // Only the private cache: a shared pool serves cold-started solves by
  // contract (set_shared_solver_pool rejects warm_start), so there are no
  // iterates of ours in it to drop — and resetting it here would touch
  // sibling instances' solvers mid-plan.
  for (auto& [m, qp_solver] : solver_cache_) qp_solver.reset_warm_start();
}

SolverCacheStats FlexibleSmoothing::solver_cache_stats() const {
  SolverCacheStats stats;
  stats.solvers = solver_cache_.size();
  for (const auto& [m, qp_solver] : solver_cache_) {
    stats.setups += qp_solver.setup_count();
    stats.solves += qp_solver.solve_count();
    stats.warm_starts += qp_solver.warm_start_count();
    stats.factorization_reuse += qp_solver.factorization_reuse_count();
  }
  return stats;
}

IntervalPlan FlexibleSmoothing::plan_interval(
    const util::TimeSeries& generation, const battery::Battery& battery,
    const solver::QpSettings* qp_override) const {
  const PreparedPlan prepared = prepare_plan(generation, battery, qp_override);
  const solver::QpResult solution = solve_prepared(prepared);
  return finish_plan(prepared, solution, generation);
}

PreparedPlan FlexibleSmoothing::prepare_plan(
    const util::TimeSeries& generation, const battery::Battery& battery,
    const solver::QpSettings* qp_override) const {
  const std::size_t m = generation.size();
  if (m < 2)
    throw std::invalid_argument(
        "FlexibleSmoothing::plan_interval: need at least 2 samples");
  const double dt_hours = generation.step().value() / 60.0;

  // Energy generated per point (kWh), the paper's U vector.
  std::vector<double> u(m);
  for (std::size_t i = 0; i < m; ++i)
    u[i] = std::max(generation[i], 0.0) * dt_hours;

  const auto& spec = battery.spec();
  const double capacity = spec.capacity.value();
  const double b0 = battery.energy().value();
  const double charge_cap = spec.max_charge_rate.value() * dt_hours;
  const double discharge_cap =
      std::min(spec.max_discharge_rate.value() * dt_hours,
               config_.max_discharge_capacity_fraction * capacity);

  // QP data: minimize Var(u + s) subject to the box (Eq. 10 + rate limits)
  // and the SoC corridor (Eq. 11 in convex state-of-charge form).
  solver::QpProblem problem;
  const bool structured = config_.structured_solver &&
                          config_.objective == SmoothingObjective::kAroundMean;
  if (structured) {
    // Structured fast path: P and A are implied by the kSmoothing tag (the
    // solver runs implicit O(m) operators) and q = P u is the O(m) centered
    // form (2/m)(u - mean(u)) instead of an O(m²) dense product.
    problem.structure = solver::QpStructure::kSmoothing;
    double u_sum = 0.0;
    for (const double v : u) u_sum += v;
    const double u_mean = u_sum / static_cast<double>(m);
    problem.q.resize(m);
    for (std::size_t i = 0; i < m; ++i)
      problem.q[i] = 2.0 / static_cast<double>(m) * (u[i] - u_mean);
  } else {
    problem.p = config_.objective == SmoothingObjective::kAroundTrend
                    ? solver::detrended_variance_quadratic_form(m)
                    : solver::variance_quadratic_form(m);
    problem.q = problem.p * u;
  }

  const std::size_t rows = 2 * m;  // box rows then cumulative rows
  if (!structured) problem.a = solver::Matrix(rows, m);
  problem.lower.assign(rows, 0.0);
  problem.upper.assign(rows, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (!structured) problem.a(i, i) = 1.0;
    problem.lower[i] = -std::min(u[i], charge_cap);  // charge <= u_i & rate
    problem.upper[i] = discharge_cap;                // Eq. 10 discharge cap
  }
  // Cumulative rows: min_energy <= B0 - sum_{t<=i} s_t <= max_energy.
  const double cum_lower = b0 - spec.max_energy().value();
  const double cum_upper = b0 - spec.min_energy().value();
  for (std::size_t i = 0; i < m; ++i) {
    if (!structured)
      for (std::size_t t = 0; t <= i; ++t) problem.a(m + i, t) = 1.0;
    problem.lower[m + i] = std::min(cum_lower, 0.0);
    problem.upper[m + i] = std::max(cum_upper, 0.0);
  }

  PreparedPlan prepared;
  prepared.problem = std::move(problem);
  prepared.settings = qp_override ? *qp_override : config_.qp;
  prepared.m = m;
  prepared.dt_hours = dt_hours;
  // An override bypasses the cache — retuned settings (the fault harness
  // forces non-convergence this way) must not pollute the warm state.
  prepared.cached = config_.reuse_solver && qp_override == nullptr;
  // Batch-safe means a batched lane reproduces what the scalar route would
  // do: the solve must be structured (BatchSolver runs the structured SoA
  // loop), pooled (the fleet seam — a private-cache solve has no batching
  // caller) and cold-started (a warm-started lane would need per-stream
  // iterates the SoA loop does not carry).
  prepared.batchable = structured && prepared.cached &&
                       shared_pool_ != nullptr && !config_.warm_start;
  return prepared;
}

solver::QpResult FlexibleSmoothing::solve_prepared(
    const PreparedPlan& prepared) const {
  // Route through the per-horizon solver cache when enabled: every interval
  // of length m shares P and A, so the cached solver reuses its KKT
  // factorization; with warm_start on it also seeds ADMM from the previous
  // interval's iterates.
  if (prepared.cached) {
    // A shared pool (fleet batched planning) replaces the private cache:
    // same lifecycle, but the factorization is keyed by (m, rho, sigma)
    // across every instance attached to the pool.
    solver::QpSolver& qp_solver =
        shared_pool_ != nullptr
            ? shared_pool_->solver_for(prepared.m, prepared.settings)
            : solver_cache_[prepared.m];
    if (!config_.warm_start) qp_solver.reset_warm_start();
    return qp_solver.solve(prepared.problem, prepared.settings);
  }
  return solver::solve_qp(prepared.problem, prepared.settings);
}

IntervalPlan FlexibleSmoothing::finish_plan(
    const PreparedPlan& prepared, const solver::QpResult& solution,
    const util::TimeSeries& generation) const {
  const std::size_t m = prepared.m;
  IntervalPlan plan;
  plan.solver_status = solution.status;
  plan.solver_iterations = solution.iterations;
  plan.solver_primal_residual = solution.primal_residual;
  plan.solver_dual_residual = solution.dual_residual;
  plan.variance_before = generation.variance();
  if (solution.status == solver::QpStatus::kSolved ||
      solution.status == solver::QpStatus::kMaxIterations) {
    plan.schedule_kwh = solution.x;
    // Clamp numerical fuzz back into the per-point box.
    for (std::size_t i = 0; i < m; ++i)
      plan.schedule_kwh[i] = std::clamp(plan.schedule_kwh[i],
                                        prepared.problem.lower[i],
                                        prepared.problem.upper[i]);
  } else {
    plan.schedule_kwh.assign(m, 0.0);  // infeasible/numerical: do nothing
  }

  std::vector<double> smoothed_kw(m);
  double max_rate = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double rate = plan.schedule_kwh[i] / prepared.dt_hours;
    smoothed_kw[i] = generation[i] + rate;
    max_rate = std::max(max_rate, std::abs(rate));
  }
  plan.variance_after = stats::variance(smoothed_kw);
  plan.max_rate_kw = max_rate;
  return plan;
}

util::TimeSeries FlexibleSmoothing::execute_plan(
    const IntervalPlan& plan, const util::TimeSeries& generation,
    battery::Battery& battery) const {
  const std::size_t m = generation.size();
  if (plan.schedule_kwh.size() < m)
    throw std::invalid_argument(
        "FlexibleSmoothing::execute_plan: plan shorter than the window");
  const double dt_hours = generation.step().value() / 60.0;
  util::TimeSeries supply(generation.step(), m);
  for (std::size_t i = 0; i < m; ++i) {
    util::Kilowatts requested{plan.schedule_kwh[i] / dt_hours};
    // A plan computed on a forecast may ask to store more than is actually
    // being generated; physically the charge can only come from the
    // generation, so cap it at the actual output.
    if (requested < util::Kilowatts{0.0})
      requested = std::max(requested, util::Kilowatts{-generation[i]});
    const util::Kilowatts actual =
        battery.apply_signed(requested, generation.step());
    supply[i] = std::max(generation[i] + actual.value(), 0.0);
  }
  return supply;
}

SmoothingResult FlexibleSmoothing::smooth(const util::TimeSeries& generation,
                                          const RegionClassifier& classifier,
                                          battery::Battery& battery) const {
  PerfectForecaster perfect;
  return smooth_with_forecast(generation, classifier, battery, perfect);
}

SmoothingResult FlexibleSmoothing::smooth_with_forecast(
    const util::TimeSeries& generation, const RegionClassifier& classifier,
    battery::Battery& battery, SupplyForecaster& forecaster) const {
  if (classifier.config().points_per_interval != config_.points_per_interval)
    throw std::invalid_argument(
        "FlexibleSmoothing::smooth: classifier interval length differs");

  // A full-series run is a self-contained replay: start it cold so repeated
  // runs on one instance are bit-identical (warm-start still accrues across
  // the intervals *within* the run).
  reset_solver_warm_starts();

  SmoothingResult result;
  result.supply = generation;  // start as pass-through; smoothed below
  const std::size_t m = config_.points_per_interval;
  const std::size_t interval_count = generation.size() / m;
  result.intervals.reserve(interval_count);
  result.plans.reserve(interval_count);

  for (std::size_t k = 0; k < interval_count; ++k) {
    const std::size_t first = k * m;
    const util::TimeSeries window = generation.slice(first, m);
    // The deployment-time decision runs on the forecast of the incoming
    // interval; execution then faces the actual generation.
    const util::TimeSeries predicted = forecaster.forecast(window);
    const IntervalClass interval = classifier.classify_window(predicted, first);
    result.intervals.push_back(interval);

    IntervalPlan plan;
    if (interval.region == Region::kSmoothable) {
      if (config_.lookahead_intervals > 1) {
        // Receding horizon: plan jointly over the upcoming L intervals
        // (clamped at the series end), execute only this one.
        const std::size_t horizon_points = std::min(
            config_.lookahead_intervals * m, generation.size() - first);
        util::TimeSeries horizon = generation.slice(first, horizon_points);
        // This interval's samples come from the forecaster; the lookahead
        // tail is forecast with the same corruption model.
        for (std::size_t i = 0; i < m && i < horizon_points; ++i)
          horizon[i] = predicted[i];
        if (horizon_points > m) {
          const util::TimeSeries tail_forecast = forecaster.forecast(
              generation.slice(first + m, horizon_points - m));
          for (std::size_t i = m; i < horizon_points; ++i)
            horizon[i] = tail_forecast[i - m];
        }
        plan = plan_interval(horizon, battery);
        plan.schedule_kwh.resize(m);  // execute the first interval only
        // Report the executed portion's peak rate, not the whole horizon's.
        const double dt_hours = generation.step().value() / 60.0;
        plan.max_rate_kw = 0.0;
        for (double s : plan.schedule_kwh)
          plan.max_rate_kw =
              std::max(plan.max_rate_kw, std::abs(s) / dt_hours);
      } else {
        plan = plan_interval(predicted, battery);
      }
      const util::TimeSeries smoothed = execute_plan(plan, window, battery);
      for (std::size_t i = 0; i < smoothed.size(); ++i)
        result.supply[first + i] = smoothed[i];
      // Report the *achieved* variance change on the actual series; the
      // plan's variance_after refers to the forecast it was computed on.
      plan.variance_before = window.variance();
      plan.variance_after = smoothed.variance();
      result.required_max_rate_kw =
          std::max(result.required_max_rate_kw, plan.max_rate_kw);
      ++result.smoothed_intervals;
    } else {
      plan.variance_before = window.variance();
      plan.variance_after = plan.variance_before;
      plan.solver_status = solver::QpStatus::kSolved;  // nothing to solve
    }
    result.plans.push_back(std::move(plan));
  }
  return result;
}

}  // namespace smoother::core
