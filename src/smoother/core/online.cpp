#include "smoother/core/online.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "smoother/obs/trace.hpp"
#include "smoother/power/capacity_factor.hpp"
#include "smoother/stats/cdf.hpp"
#include "smoother/stats/descriptive.hpp"

namespace smoother::core {

namespace {

/// The guard inherits the smoother's rated power unless explicitly set.
resilience::TelemetryGuardConfig guard_config(
    const OnlineSmootherConfig& config) {
  resilience::TelemetryGuardConfig guard = config.telemetry_guard;
  if (guard.rated_power_kw <= 0.0)
    guard.rated_power_kw = config.rated_power.value();
  return guard;
}

/// The one place region thresholds are derived from a variance history:
/// refresh_thresholds() (live updates) and import_state() (the calibrated-
/// snapshot consistency check) must agree bitwise, so they share this.
RegionThresholds derive_thresholds(const std::vector<double>& history,
                                   double stable_cdf, double extreme_cdf) {
  const stats::EmpiricalCdf cdf(history);
  RegionThresholds thresholds;
  // Epsilon floor: a degenerate history (all-constant supply) must map
  // zero-variance intervals to Region-I, not Region-II-1.
  thresholds.stable_below = std::max(cdf.value_at(stable_cdf), 1e-12);
  thresholds.extreme_above = cdf.value_at(extreme_cdf);
  if (!(thresholds.stable_below < thresholds.extreme_above))
    thresholds.extreme_above =
        thresholds.stable_below * (1.0 + 1e-9) + 1e-12;
  return thresholds;
}

resilience::FallbackReason fallback_reason_for(resilience::FaultKind kind) {
  switch (kind) {
    case resilience::FaultKind::kOracleThrow:
    case resilience::FaultKind::kOracleBadLength:
    case resilience::FaultKind::kOracleStale:
      return resilience::FallbackReason::kOracleFailed;
    case resilience::FaultKind::kSolverFailure:
      return resilience::FallbackReason::kSolverNotConverged;
    default:
      return resilience::FallbackReason::kInternalError;
  }
}

}  // namespace

void OnlineSmootherConfig::validate() const {
  flexible_smoothing.validate();
  if (flexible_smoothing.lookahead_intervals != 1)
    throw std::invalid_argument(
        "OnlineSmootherConfig: streaming mode cannot look ahead");
  if (sample_step <= util::Minutes{0.0})
    throw std::invalid_argument("OnlineSmootherConfig: step must be > 0");
  if (rated_power <= util::Kilowatts{0.0})
    throw std::invalid_argument("OnlineSmootherConfig: rated power > 0");
  if (warmup_intervals == 0)
    throw std::invalid_argument("OnlineSmootherConfig: warmup must be >= 1");
  if (history_intervals < warmup_intervals)
    throw std::invalid_argument(
        "OnlineSmootherConfig: history must cover the warmup");
  if (!(0.0 <= stable_cdf && stable_cdf < extreme_cdf && extreme_cdf <= 1.0))
    throw std::invalid_argument(
        "OnlineSmootherConfig: need 0 <= stable < extreme <= 1");
  telemetry_guard.validate();
  if (recovery_intervals == 0)
    throw std::invalid_argument(
        "OnlineSmootherConfig: recovery hysteresis must be >= 1 interval");
  if (!(max_faulted_fraction >= 0.0 && max_faulted_fraction <= 1.0))
    throw std::invalid_argument(
        "OnlineSmootherConfig: max faulted fraction in [0,1]");
}

OnlineSmoother::OnlineSmoother(OnlineSmootherConfig config,
                               battery::Battery battery)
    : OnlineSmoother(std::move(config), std::move(battery), Hooks{}) {}

OnlineSmoother::OnlineSmoother(OnlineSmootherConfig config,
                               battery::Battery battery, Hooks hooks)
    : config_(config),
      smoothing_(config.flexible_smoothing),
      battery_(std::move(battery)),
      hooks_(std::move(hooks)),
      guard_(guard_config(config)),
      output_(config.sample_step, std::vector<double>{}) {
  config_.validate();
  pending_.reserve(config_.flexible_smoothing.points_per_interval);
}

std::optional<OnlineIntervalRecord> OnlineSmoother::push(
    double generation_kw) {
  return accept_sample(guard_.sanitize(generation_kw));
}

std::optional<OnlineIntervalRecord> OnlineSmoother::push_missing() {
  return accept_sample(guard_.fill_gap());
}

std::optional<OnlineIntervalRecord> OnlineSmoother::accept_sample(
    resilience::GuardedSample sample) {
  PendingInterval pending;
  if (!prepare_sample(sample, pending)) return std::nullopt;
  finish_interval(pending);
  return records_.back();
}

bool OnlineSmoother::push_prepare(double generation_kw,
                                  PendingInterval& pending) {
  return prepare_sample(guard_.sanitize(generation_kw), pending);
}

bool OnlineSmoother::push_missing_prepare(PendingInterval& pending) {
  return prepare_sample(guard_.fill_gap(), pending);
}

OnlineIntervalRecord OnlineSmoother::push_commit(PendingInterval& pending) {
  if (!pending.active_)
    throw std::logic_error(
        "OnlineSmoother::push_commit: no interval in flight");
  finish_interval(pending);
  return records_.back();
}

bool OnlineSmoother::prepare_sample(resilience::GuardedSample sample,
                                    PendingInterval& pending) {
  if (interval_in_flight_)
    throw std::logic_error(
        "OnlineSmoother: commit the in-flight interval before pushing "
        "another sample (push_prepare without push_commit)");
  ++health_.samples_seen;
  if (sample.fault != resilience::FaultKind::kNone) {
    health_.record_sample_fault(sample.fault);
    ++pending_faulted_;
  }
  pending_.push_back(std::max(sample.value_kw, 0.0));
  if (pending_.size() < config_.flexible_smoothing.points_per_interval)
    return false;
  begin_interval(pending);
  return true;
}

void OnlineSmoother::begin_interval(PendingInterval& pending) {
  pending = PendingInterval{};
  pending.active_ = true;
  interval_in_flight_ = true;
  // Wall-clock anchor for the plan-latency histogram (the explicitly
  // non-deterministic metric): on the batched path it includes the time the
  // interval waits for its batch, which is the latency a caller observes.
  pending.interval_start_ = std::chrono::steady_clock::now();

  pending.window_ = util::TimeSeries(config_.sample_step, pending_);
  const util::TimeSeries& window = pending.window_;

  OnlineIntervalRecord& record = pending.record_;
  record.index = interval_base_ + records_.size();
  record.variance_before = window.variance();
  record.variance_after = record.variance_before;
  record.degraded = mode_ == Mode::kDegraded;

  // Fluctuation measure consistent with the configured objective.
  const util::TimeSeries cf =
      power::capacity_factor_series(window, config_.rated_power);
  record.cf_variance =
      config_.flexible_smoothing.objective == SmoothingObjective::kAroundTrend
          ? stats::detrended_variance(cf.values())
          : cf.variance();

  // Classify with the thresholds learned from *past* intervals only.
  Region region = Region::kStable;
  if (calibrated_) {
    if (record.cf_variance >= thresholds_.extreme_above)
      region = Region::kExtreme;
    else if (record.cf_variance >= thresholds_.stable_below)
      region = Region::kSmoothable;
  }
  record.region = region;
  record.warmup = !calibrated_;

  // Per-interval health inputs. The battery monitor is polled exactly once
  // per interval; an interval whose window is mostly guard-fabricated data
  // is not planned on.
  pending.battery_ok_ =
      !hooks_.battery_monitor || hooks_.battery_monitor(record.index);
  pending.telemetry_ok_ =
      static_cast<double>(pending_faulted_) <=
      config_.max_faulted_fraction * static_cast<double>(pending_.size());

  pending.smoothable_ = calibrated_ && region == Region::kSmoothable &&
                        (!previous_interval_.empty() ||
                         hooks_.forecast_oracle);

  // The fallible pre-solve half of the planning step — forecast, override
  // hook, QP preparation — runs exactly when the monolithic path would have
  // entered plan_and_execute. Failures are parked for finish_interval to
  // turn into the same fallbacks.
  if (pending.telemetry_ok_ && pending.battery_ok_ && pending.smoothable_ &&
      mode_ != Mode::kDegraded) {
    using resilience::Error;
    using resilience::FaultKind;
    try {
      auto forecast = fetch_forecast(record.index);
      if (!forecast) {
        pending.plan_error_ = forecast.error();
      } else {
        pending.predicted_ = util::TimeSeries(config_.sample_step,
                                              std::move(forecast.value()));
        std::optional<solver::QpSettings> qp_override;
        if (hooks_.solver_settings)
          qp_override = hooks_.solver_settings(record.index);
        pending.prepared_ = smoothing_.prepare_plan(
            pending.predicted_, battery_, qp_override ? &*qp_override
                                                      : nullptr);
        pending.needs_solve_ = true;
      }
    } catch (const std::exception& e) {
      pending.plan_error_ = Error{FaultKind::kInternalError, e.what()};
    } catch (...) {
      pending.plan_error_ =
          Error{FaultKind::kInternalError, "non-exception thrown"};
    }
  }
}

void OnlineSmoother::finish_interval(PendingInterval& pending) {
  using resilience::FallbackReason;

  // Observability: one registry/tracer load per interval (not per sample);
  // all recorded values are deterministic counts except the plan-latency
  // timing histogram and the span's wall_ms, which are the explicitly
  // marked wall-clock fields.
  obs::MetricsRegistry* metrics = obs::global_metrics();
  obs::Span span(obs::global_tracer(), "interval-plan");
  const auto interval_start = pending.interval_start_;

  const util::TimeSeries& window = pending.window_;
  OnlineIntervalRecord record = pending.record_;

  std::optional<util::TimeSeries> delivered;
  if (!pending.telemetry_ok_) {
    // Most of the window is guard-fabricated data: the variance
    // classification itself rests on invented samples, so regardless of
    // the region label the interval is not planned on — it passes through.
    record.fallback = FallbackReason::kTelemetryUnreliable;
  } else if (!pending.battery_ok_) {
    // Recorded whatever the region: the interval was processed without the
    // battery. (Keying the fallback on the injected fault alone — never on
    // the corruption-sensitive region label — is what keeps measured
    // fallback curves monotone in the injected fault rate.)
    record.fallback = FallbackReason::kBatteryFaulted;
  } else if (pending.smoothable_) {
    // record.degraded captured mode_ at begin time; nothing between begin
    // and commit mutates the mode.
    if (record.degraded) {
      record.fallback = FallbackReason::kDegradedHold;
    } else {
      auto planned = complete_plan(pending, record);
      if (planned) {
        delivered = std::move(planned.value());
      } else {
        health_.record_interval_fault(planned.error().kind);
        record.fallback = fallback_reason_for(planned.error().kind);
      }
    }
    // Degraded handling: keep the stream smooth with the cheap
    // persistence-tracking plan (the battery is usable on this branch);
    // telemetry- and battery-faulted intervals pass through untouched.
    if (!delivered && !previous_interval_.empty())
      delivered = execute_fallback_plan(window);
  }

  if (delivered) {
    for (std::size_t i = 0; i < delivered->size(); ++i)
      output_.push_back((*delivered)[i]);
    record.smoothed = true;
    record.variance_after = delivered->variance();
  } else {
    for (double v : pending_) output_.push_back(v);
  }

  // Degraded-mode state machine. Any observed fault zeroes the healthy
  // streak and enters degraded mode; `recovery_intervals` consecutive
  // healthy intervals re-arm the QP path.
  ++health_.intervals_seen;
  health_.record_fallback(record.fallback);
  const bool fault_observed =
      !pending.telemetry_ok_ || !pending.battery_ok_ ||
      record.fallback == FallbackReason::kOracleFailed ||
      record.fallback == FallbackReason::kSolverNotConverged ||
      record.fallback == FallbackReason::kInternalError;
  if (fault_observed) {
    healthy_streak_ = 0;
    if (mode_ == Mode::kNormal) {
      mode_ = Mode::kDegraded;
      ++health_.degraded_entries;
    }
  } else if (mode_ == Mode::kDegraded &&
             ++healthy_streak_ >= config_.recovery_intervals) {
    mode_ = Mode::kNormal;
    healthy_streak_ = 0;
    ++health_.recoveries;
    // The fallback intervals rewrote the battery trajectory without going
    // through the QP, so the cached duals describe a world that no longer
    // exists — cold-start the first post-recovery plan instead of
    // warm-starting from stale iterates.
    smoothing_.reset_solver_warm_starts();
  }

  const std::size_t faulted_samples = pending_faulted_;

  // Commit the stream state unconditionally — an interval that fell back
  // must advance the pipeline exactly like a planned one, or every
  // subsequent interval would be misaligned.
  variance_history_.push_back(record.cf_variance);
  while (variance_history_.size() > config_.history_intervals)
    variance_history_.pop_front();
  if (variance_history_.size() >= config_.warmup_intervals) {
    refresh_thresholds();
    calibrated_ = true;
  }

  previous_interval_ = pending_;
  pending_.clear();
  pending_faulted_ = 0;
  records_.push_back(record);

  // Telemetry publication: deterministic tallies first, then the
  // plan-latency timing histogram (the one wall-clock metric), then the
  // span fields and the observer callback.
  const double plan_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - interval_start)
          .count();
  if (metrics != nullptr) {
    metrics->counter("core.online.intervals").add(1);
    metrics->counter("core.online.region." + to_string(record.region)).add(1);
    if (record.fallback != FallbackReason::kNone)
      metrics
          ->counter("core.online.fallback." +
                    resilience::to_string(record.fallback))
          .add(1);
    if (record.smoothed) metrics->counter("core.online.smoothed").add(1);
    metrics->counter("core.online.samples_seen").add(window.size());
    if (faulted_samples > 0)
      metrics->counter("core.online.samples_faulted").add(faulted_samples);
    metrics->timing_histogram("core.online.plan_ms").record(plan_wall_ms);
  }
  span.field("index", record.index)
      .field("region", to_string(record.region))
      .field("fallback", resilience::to_string(record.fallback))
      .field("smoothed", record.smoothed ? 1 : 0)
      .field("solver_iterations", record.solver_iterations);

  pending.active_ = false;
  interval_in_flight_ = false;

  if (hooks_.observer != nullptr) {
    obs::IntervalEvent event;
    event.index = record.index;
    event.region = to_string(record.region);
    event.fallback = resilience::to_string(record.fallback);
    event.smoothed = record.smoothed;
    event.warmup = record.warmup;
    event.degraded = record.degraded;
    event.cf_variance = record.cf_variance;
    event.variance_before = record.variance_before;
    event.variance_after = record.variance_after;
    event.solver_iterations = record.solver_iterations;
    event.plan_wall_ms = plan_wall_ms;
    try {
      hooks_.observer->on_interval(event);
    } catch (...) {
      // Observer contract: the hot path is no-throw; a misbehaving observer
      // is counted, never propagated.
      if (metrics != nullptr)
        metrics->counter("core.online.observer_errors").add(1);
    }
  }
}

OnlineSmoother::StreamState OnlineSmoother::export_state() const {
  StreamState state;
  export_state_into(state);
  return state;
}

void OnlineSmoother::export_state_into(StreamState& state) const {
  state.degraded = mode_ == Mode::kDegraded;
  state.healthy_streak = healthy_streak_;
  state.pending_faulted = pending_faulted_;
  state.pending = pending_;
  state.previous_interval = previous_interval_;
  state.variance_history.assign(variance_history_.begin(),
                                variance_history_.end());
  state.stable_below = thresholds_.stable_below;
  state.extreme_above = thresholds_.extreme_above;
  state.calibrated = calibrated_;
  state.intervals_completed = interval_base_ + records_.size();
  state.output_samples = output_base_ + output_.size();
  const std::size_t points = config_.flexible_smoothing.points_per_interval;
  const std::size_t tail = std::min(points, output_.size());
  state.output_tail.assign(output_.values().end() -
                               static_cast<std::ptrdiff_t>(tail),
                           output_.values().end());
  state.guard_last_good_kw = guard_.last_good_kw();
  state.battery = battery_.state();
  state.health = health_;
}

void OnlineSmoother::import_state(const StreamState& state) {
  const std::size_t points = config_.flexible_smoothing.points_per_interval;
  auto all_finite = [](const std::vector<double>& values) {
    for (double v : values)
      if (!std::isfinite(v)) return false;
    return true;
  };
  if (state.pending.size() >= points)
    throw std::invalid_argument(
        "OnlineSmoother::import_state: a full pending window should have "
        "been processed, never captured");
  if (!state.previous_interval.empty() &&
      state.previous_interval.size() != points)
    throw std::invalid_argument(
        "OnlineSmoother::import_state: previous interval length mismatch");
  if (state.variance_history.size() > config_.history_intervals)
    throw std::invalid_argument(
        "OnlineSmoother::import_state: variance history exceeds the window");
  if (!all_finite(state.pending) || !all_finite(state.previous_interval) ||
      !all_finite(state.variance_history) || !all_finite(state.output_tail))
    throw std::invalid_argument(
        "OnlineSmoother::import_state: non-finite sample in state");
  if (state.calibrated) {
    if (state.variance_history.size() < config_.warmup_intervals)
      throw std::invalid_argument(
          "OnlineSmoother::import_state: calibrated without enough history");
    if (!(state.stable_below > 0.0 &&
          state.stable_below < state.extreme_above))
      throw std::invalid_argument(
          "OnlineSmoother::import_state: calibrated thresholds must satisfy "
          "0 < stable < extreme");
    // Config-consistency gate: every genuine same-config export satisfies
    // thresholds == derive(variance_history) bitwise, because
    // process_interval() commits the history and refreshes the thresholds
    // in the same step. A snapshot that fails this was written under
    // different CDF levels (or hand-edited) — reject with the typed error
    // rather than silently adopting thresholds this config would never
    // have derived. Exact comparison is deliberate: the derivation is
    // pure arithmetic on the same inputs, so the only way to differ at
    // all is to differ in provenance.
    const RegionThresholds derived = derive_thresholds(
        state.variance_history, config_.stable_cdf, config_.extreme_cdf);
    if (state.stable_below != derived.stable_below ||
        state.extreme_above != derived.extreme_above)
      throw StateMismatchError(
          "OnlineSmoother::import_state: snapshot thresholds disagree with "
          "the constructing config's CDF levels (snapshot " +
          std::to_string(state.stable_below) + "/" +
          std::to_string(state.extreme_above) + ", derived " +
          std::to_string(derived.stable_below) + "/" +
          std::to_string(derived.extreme_above) +
          ") — the state was captured under a different configuration");
  }
  if (state.pending_faulted > state.pending.size())
    throw std::invalid_argument(
        "OnlineSmoother::import_state: more faulted samples than pending");
  if (static_cast<std::uint64_t>(state.output_tail.size()) >
      state.output_samples)
    throw std::invalid_argument(
        "OnlineSmoother::import_state: output tail longer than the output");
  battery_.restore(state.battery);  // validates against the current spec
  guard_.restore_last_good(state.guard_last_good_kw);

  mode_ = state.degraded ? Mode::kDegraded : Mode::kNormal;
  healthy_streak_ = static_cast<std::size_t>(state.healthy_streak);
  pending_faulted_ = static_cast<std::size_t>(state.pending_faulted);
  pending_ = state.pending;
  pending_.reserve(points);
  previous_interval_ = state.previous_interval;
  variance_history_.assign(state.variance_history.begin(),
                           state.variance_history.end());
  thresholds_.stable_below = state.stable_below;
  thresholds_.extreme_above = state.extreme_above;
  calibrated_ = state.calibrated;
  health_ = state.health;
  records_.clear();
  interval_base_ = static_cast<std::size_t>(state.intervals_completed);
  output_base_ = static_cast<std::size_t>(state.output_samples) -
                 state.output_tail.size();
  output_ = util::TimeSeries(config_.sample_step, state.output_tail);
  // A restored smoother re-plans from scratch: the cached solver iterates
  // described the pre-checkpoint world (and after a crash, possibly a world
  // that never committed), exactly the situation the degraded-mode recovery
  // cold-start exists for.
  smoothing_.reset_solver_warm_starts();
}

void OnlineSmoother::compact(std::size_t keep_output_samples,
                             std::size_t keep_records) {
  // Never truncate below one full interval: export_state() reads the last
  // points_per_interval output samples as the checkpoint tail.
  const std::size_t floor = config_.flexible_smoothing.points_per_interval;
  keep_output_samples = std::max(keep_output_samples, floor);
  if (records_.size() > keep_records) {
    const std::size_t drop = records_.size() - keep_records;
    records_.erase(records_.begin(),
                   records_.begin() + static_cast<std::ptrdiff_t>(drop));
    interval_base_ += drop;
  }
  if (output_.size() > keep_output_samples) {
    const std::size_t drop = output_.size() - keep_output_samples;
    output_.drop_front(drop);
    output_base_ += drop;
  }
}

resilience::Result<util::TimeSeries> OnlineSmoother::complete_plan(
    PendingInterval& pending, OnlineIntervalRecord& record) {
  using resilience::Error;
  using resilience::FaultKind;
  // A forecast/preparation failure from begin_interval surfaces here so the
  // fallback decision happens where the monolithic path made it.
  if (pending.plan_error_) return *pending.plan_error_;
  try {
    if (!pending.solved_)
      pending.solution_ = smoothing_.solve_prepared(pending.prepared_);
    const IntervalPlan plan = smoothing_.finish_plan(
        pending.prepared_, pending.solution_, pending.predicted_);
    record.solver_iterations = plan.solver_iterations;
    if (plan.solver_status != solver::QpStatus::kSolved)
      return Error{FaultKind::kSolverFailure,
                   "QP status " + solver::to_string(plan.solver_status)};
    return smoothing_.execute_plan(plan, pending.window_, battery_);
  } catch (const std::exception& e) {
    return Error{FaultKind::kInternalError, e.what()};
  } catch (...) {
    return Error{FaultKind::kInternalError, "non-exception thrown"};
  }
}

resilience::Result<std::vector<double>> OnlineSmoother::fetch_forecast(
    std::size_t index) {
  using resilience::Error;
  using resilience::FaultKind;
  if (!hooks_.forecast_oracle) return previous_interval_;
  std::vector<double> predicted;
  try {
    predicted = hooks_.forecast_oracle(index);
  } catch (const std::exception& e) {
    return Error{FaultKind::kOracleThrow, e.what()};
  } catch (...) {
    return Error{FaultKind::kOracleThrow, "oracle threw a non-exception"};
  }
  if (predicted.size() != pending_.size())
    return Error{FaultKind::kOracleBadLength,
                 "oracle returned " + std::to_string(predicted.size()) +
                     " samples, expected " + std::to_string(pending_.size())};
  for (double& v : predicted) {
    if (!std::isfinite(v))
      return Error{FaultKind::kOracleBadLength,
                   "oracle returned a non-finite sample"};
    v = std::max(v, 0.0);
  }
  return predicted;
}

util::TimeSeries OnlineSmoother::execute_fallback_plan(
    const util::TimeSeries& window) {
  // Persistence-tracking moving average: steer every point toward the
  // previous interval's mean. One subtraction per point instead of a QP;
  // execute_plan clamps the schedule to what the battery and the actual
  // generation admit, so the corridor and rate limits hold by construction.
  double target = 0.0;
  for (double v : previous_interval_) target += v;
  target /= static_cast<double>(previous_interval_.size());

  const double dt_hours = config_.sample_step.value() / 60.0;
  IntervalPlan plan;
  plan.schedule_kwh.resize(window.size());
  for (std::size_t i = 0; i < window.size(); ++i)
    plan.schedule_kwh[i] = (target - window[i]) * dt_hours;
  return smoothing_.execute_plan(plan, window, battery_);
}

void OnlineSmoother::refresh_thresholds() {
  const std::vector<double> history(variance_history_.begin(),
                                    variance_history_.end());
  thresholds_ = derive_thresholds(history, config_.stable_cdf,
                                  config_.extreme_cdf);
}

}  // namespace smoother::core
