#include "smoother/core/online.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "smoother/power/capacity_factor.hpp"
#include "smoother/stats/cdf.hpp"
#include "smoother/stats/descriptive.hpp"

namespace smoother::core {

void OnlineSmootherConfig::validate() const {
  flexible_smoothing.validate();
  if (flexible_smoothing.lookahead_intervals != 1)
    throw std::invalid_argument(
        "OnlineSmootherConfig: streaming mode cannot look ahead");
  if (sample_step <= util::Minutes{0.0})
    throw std::invalid_argument("OnlineSmootherConfig: step must be > 0");
  if (rated_power <= util::Kilowatts{0.0})
    throw std::invalid_argument("OnlineSmootherConfig: rated power > 0");
  if (warmup_intervals == 0)
    throw std::invalid_argument("OnlineSmootherConfig: warmup must be >= 1");
  if (history_intervals < warmup_intervals)
    throw std::invalid_argument(
        "OnlineSmootherConfig: history must cover the warmup");
  if (!(0.0 <= stable_cdf && stable_cdf < extreme_cdf && extreme_cdf <= 1.0))
    throw std::invalid_argument(
        "OnlineSmootherConfig: need 0 <= stable < extreme <= 1");
}

OnlineSmoother::OnlineSmoother(OnlineSmootherConfig config,
                               battery::Battery battery)
    : config_(config),
      smoothing_(config.flexible_smoothing),
      battery_(std::move(battery)),
      output_(config.sample_step, std::vector<double>{}) {
  config_.validate();
  pending_.reserve(config_.flexible_smoothing.points_per_interval);
}

std::optional<OnlineIntervalRecord> OnlineSmoother::push(
    double generation_kw) {
  pending_.push_back(std::max(generation_kw, 0.0));
  if (pending_.size() < config_.flexible_smoothing.points_per_interval)
    return std::nullopt;
  process_interval();
  return records_.back();
}

void OnlineSmoother::process_interval() {
  const util::TimeSeries window(config_.sample_step, pending_);

  OnlineIntervalRecord record;
  record.index = records_.size();
  record.variance_before = window.variance();
  record.variance_after = record.variance_before;

  // Fluctuation measure consistent with the configured objective.
  const util::TimeSeries cf =
      power::capacity_factor_series(window, config_.rated_power);
  record.cf_variance =
      config_.flexible_smoothing.objective == SmoothingObjective::kAroundTrend
          ? stats::detrended_variance(cf.values())
          : cf.variance();

  // Classify with the thresholds learned from *past* intervals only.
  Region region = Region::kStable;
  if (calibrated_) {
    if (record.cf_variance >= thresholds_.extreme_above)
      region = Region::kExtreme;
    else if (record.cf_variance >= thresholds_.stable_below)
      region = Region::kSmoothable;
  }
  record.region = region;
  record.warmup = !calibrated_;

  if (calibrated_ && region == Region::kSmoothable &&
      (!previous_interval_.empty() || oracle_)) {
    // Forecast of this interval as it would have looked at its start: the
    // attached oracle if any, else persistence (the previous interval).
    std::vector<double> predicted;
    if (oracle_) {
      predicted = oracle_(record.index);
      if (predicted.size() != pending_.size())
        throw std::runtime_error(
            "OnlineSmoother: oracle returned wrong forecast length");
      for (double& v : predicted) v = std::max(v, 0.0);
    } else {
      predicted = previous_interval_;
    }
    const util::TimeSeries forecast(config_.sample_step,
                                    std::move(predicted));
    const IntervalPlan plan = smoothing_.plan_interval(forecast, battery_);
    const util::TimeSeries smoothed =
        smoothing_.execute_plan(plan, window, battery_);
    for (std::size_t i = 0; i < smoothed.size(); ++i)
      output_.push_back(smoothed[i]);
    record.smoothed = true;
    record.variance_after = smoothed.variance();
  } else {
    for (double v : pending_) output_.push_back(v);
  }

  // Update the variance history and (re)derive thresholds for the future.
  variance_history_.push_back(record.cf_variance);
  while (variance_history_.size() > config_.history_intervals)
    variance_history_.pop_front();
  if (variance_history_.size() >= config_.warmup_intervals) {
    refresh_thresholds();
    calibrated_ = true;
  }

  previous_interval_ = pending_;
  pending_.clear();
  records_.push_back(record);
}

void OnlineSmoother::refresh_thresholds() {
  const std::vector<double> history(variance_history_.begin(),
                                    variance_history_.end());
  const stats::EmpiricalCdf cdf(history);
  // Epsilon floor: a degenerate history (all-constant supply) must map
  // zero-variance intervals to Region-I, not Region-II-1.
  thresholds_.stable_below =
      std::max(cdf.value_at(config_.stable_cdf), 1e-12);
  thresholds_.extreme_above = cdf.value_at(config_.extreme_cdf);
  if (!(thresholds_.stable_below < thresholds_.extreme_above))
    thresholds_.extreme_above = thresholds_.stable_below * (1.0 + 1e-9) +
                                1e-12;
}

}  // namespace smoother::core
