#include "smoother/core/smoother.hpp"

#include <stdexcept>

namespace smoother::core {

void SmootherConfig::validate() const {
  flexible_smoothing.validate();
  battery.validate();
  if (derive_thresholds) {
    if (!(0.0 <= stable_cdf && stable_cdf < extreme_cdf && extreme_cdf <= 1.0))
      throw std::invalid_argument(
          "SmootherConfig: need 0 <= stable_cdf < extreme_cdf <= 1");
  } else {
    fixed_thresholds.validate();
  }
  if (rated_power <= util::Kilowatts{0.0})
    throw std::invalid_argument("SmootherConfig: rated power must be > 0");
}

Smoother::Smoother(SmootherConfig config) : config_(std::move(config)) {
  config_.validate();
}

RegionClassifier Smoother::make_classifier(
    const util::TimeSeries& history) const {
  RegionClassifierConfig rc;
  rc.rated_power = config_.rated_power;
  rc.points_per_interval = config_.flexible_smoothing.points_per_interval;
  rc.detrend = config_.flexible_smoothing.objective ==
               SmoothingObjective::kAroundTrend;
  rc.thresholds =
      config_.derive_thresholds
          ? thresholds_from_history(history, config_.rated_power,
                                    rc.points_per_interval, config_.stable_cdf,
                                    config_.extreme_cdf, rc.detrend)
          : config_.fixed_thresholds;
  return RegionClassifier(rc);
}

SmoothingResult Smoother::smooth_supply(const util::TimeSeries& raw,
                                        double* battery_cycles) const {
  const RegionClassifier classifier = make_classifier(raw);
  if (!config_.enable_flexible_smoothing) {
    SmoothingResult result;
    result.supply = raw;
    result.intervals = classifier.classify(raw);
    result.plans.resize(result.intervals.size());
    if (battery_cycles != nullptr) *battery_cycles = 0.0;
    return result;
  }
  battery::Battery battery(config_.battery, config_.initial_soc_fraction);
  const FlexibleSmoothing fs(config_.flexible_smoothing);
  SmoothingResult result = fs.smooth(raw, classifier, battery);
  if (battery_cycles != nullptr)
    *battery_cycles = battery.equivalent_full_cycles();
  return result;
}

sched::ScheduleResult Smoother::schedule_jobs(
    std::vector<sched::Job> jobs, const util::TimeSeries& supply,
    std::size_t total_servers, util::Kilowatts baseline_power) const {
  sched::ScheduleRequest request;
  request.jobs = std::move(jobs);
  request.renewable = supply;
  request.total_servers = total_servers;
  request.baseline_power = baseline_power;
  if (config_.enable_active_delay) {
    const ActiveDelayScheduler scheduler(config_.active_delay);
    return scheduler.schedule(request);
  }
  const sched::ImmediateScheduler scheduler;
  return scheduler.schedule(request);
}

RunReport Smoother::run(const util::TimeSeries& raw_renewable,
                        std::vector<sched::Job> jobs,
                        std::size_t total_servers,
                        util::Minutes schedule_step,
                        util::Kilowatts baseline_power) const {
  RunReport report;
  report.smoothing =
      smooth_supply(raw_renewable, &report.battery_equivalent_cycles);

  const util::TimeSeries supply =
      report.smoothing.supply.resample(schedule_step);
  report.schedule =
      schedule_jobs(std::move(jobs), supply, total_servers, baseline_power);

  // Demand seen by the power system: scheduled workload plus the constant
  // baseline.
  util::TimeSeries total_demand = report.schedule.demand;
  for (std::size_t i = 0; i < total_demand.size(); ++i)
    total_demand[i] += baseline_power.value();

  report.switching_times = energy_switching_times(supply, total_demand);
  report.renewable_utilization = renewable_utilization(supply, total_demand);
  report.grid_energy = grid_energy_needed(supply, total_demand);
  return report;
}

}  // namespace smoother::core
