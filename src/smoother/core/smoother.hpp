// The Smoother middleware facade (paper Section III).
//
// Smoother sits between a renewable generation feed and a cluster:
//
//   raw wind power --(Flexible Smoothing + battery)--> stable supply
//   job requests  --(Active Delay)-----------------> deferred schedule
//
// and reports the paper's two headline metrics: energy switching times
// (stability impact, Figs. 10-14, 18) and renewable power utilization
// (Fig. 17). Both stages can be individually disabled, which is exactly how
// the paper's W/O FS and W/O AD comparison arms are produced.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "smoother/battery/battery.hpp"
#include "smoother/core/active_delay.hpp"
#include "smoother/core/flexible_smoothing.hpp"
#include "smoother/core/metrics.hpp"
#include "smoother/core/region.hpp"
#include "smoother/sched/scheduler.hpp"

namespace smoother::core {

/// End-to-end middleware configuration.
struct SmootherConfig {
  bool enable_flexible_smoothing = true;
  bool enable_active_delay = true;

  FlexibleSmoothingConfig flexible_smoothing;
  ActiveDelayConfig active_delay;

  battery::BatterySpec battery;
  double initial_soc_fraction = -1.0;  ///< -1 = mid-corridor

  /// Region thresholds: derived from the supply history at these CDF levels
  /// when `derive_thresholds` is set (the paper's procedure, extreme at
  /// 0.95), otherwise `fixed_thresholds` is used as-is.
  bool derive_thresholds = true;
  double stable_cdf = 0.25;
  double extreme_cdf = 0.95;
  RegionThresholds fixed_thresholds;

  /// Rated power for capacity-factor computation (P_rate of Eq. 6).
  util::Kilowatts rated_power{976.0};

  void validate() const;
};

/// Everything one end-to-end run produces.
struct RunReport {
  SmoothingResult smoothing;          ///< stage 1 output
  sched::ScheduleResult schedule;     ///< stage 2 output
  std::size_t switching_times = 0;    ///< supply-vs-demand crossings
  double renewable_utilization = 0.0; ///< used / generated
  util::KilowattHours grid_energy{0.0};
  double battery_equivalent_cycles = 0.0;
};

/// The middleware.
class Smoother {
 public:
  /// Throws std::invalid_argument on inconsistent configuration.
  explicit Smoother(SmootherConfig config);

  [[nodiscard]] const SmootherConfig& config() const { return config_; }

  /// Builds the region classifier for a given supply history (derives
  /// thresholds when configured to).
  [[nodiscard]] RegionClassifier make_classifier(
      const util::TimeSeries& history) const;

  /// Stage 1: smooth a raw renewable series. When FS is disabled the series
  /// passes through unchanged (intervals still classified for reporting).
  /// A fresh battery (from config) is used; its end state is reported in
  /// the result via `battery_cycles`.
  [[nodiscard]] SmoothingResult smooth_supply(
      const util::TimeSeries& raw, double* battery_cycles = nullptr) const;

  /// Stage 2: schedule jobs against a supply series (any step). Uses
  /// Active Delay when enabled, otherwise the immediate baseline.
  [[nodiscard]] sched::ScheduleResult schedule_jobs(
      std::vector<sched::Job> jobs, const util::TimeSeries& supply,
      std::size_t total_servers,
      util::Kilowatts baseline_power = util::Kilowatts{0.0}) const;

  /// End-to-end: smooth, resample the supply to `schedule_step`, schedule,
  /// and compute the headline metrics. The raw series' step must be an
  /// integer multiple (or divisor) of schedule_step.
  [[nodiscard]] RunReport run(
      const util::TimeSeries& raw_renewable, std::vector<sched::Job> jobs,
      std::size_t total_servers,
      util::Minutes schedule_step = util::kOneMinute,
      util::Kilowatts baseline_power = util::Kilowatts{0.0}) const;

 private:
  SmootherConfig config_;
};

}  // namespace smoother::core
