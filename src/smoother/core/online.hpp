// Online (streaming) Smoother.
//
// The batch pipeline (FlexibleSmoothing::smooth) sees the whole trace; a
// deployed middleware sees samples as they arrive. OnlineSmoother is the
// stateful counterpart:
//
//   * samples are pushed one at a time; each completed interval is planned
//     and executed before the next begins;
//   * the interval about to start is predicted with a persistence forecast
//     (next interval ~ the last one) unless a SupplyForecaster-backed
//     oracle is attached, mirroring how a real predictor would slot in;
//   * region thresholds are *learned online*: the first `warmup_intervals`
//     pass through unsmoothed while their variances accumulate, then the
//     CDF thresholds are derived and kept up to date over a sliding
//     history window.
//
// push() returns the smoothed value for each completed sample with one
// interval of latency (decisions are made at interval boundaries, as in
// the paper).
//
// Because the smoother sits in a live power path, the streaming hot path is
// hardened: a resilience::TelemetryGuard sanitizes every sample, and a
// degraded-mode state machine keeps the stream flowing when the forecast
// oracle fails, the QP does not converge, or the battery is reported
// unavailable. Failed intervals fall back per-interval — a cheap
// persistence-tracking plan when the battery is usable, pass-through
// otherwise — the reason is recorded on the OnlineIntervalRecord and
// counted in the HealthReport, and the smoother probes its way back to the
// QP-planned path after `recovery_intervals` consecutive healthy intervals.
// After construction, push() never throws: failures become fallbacks, not
// exceptions. On clean input every guard and fallback layer is a no-op and
// the output is bit-identical to the unhardened pipeline.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "smoother/battery/battery.hpp"
#include "smoother/core/flexible_smoothing.hpp"
#include "smoother/core/region.hpp"
#include "smoother/obs/interval_observer.hpp"
#include "smoother/obs/metrics.hpp"
#include "smoother/resilience/health.hpp"
#include "smoother/resilience/result.hpp"
#include "smoother/resilience/telemetry_guard.hpp"
#include "smoother/util/time_series.hpp"
#include "smoother/util/units.hpp"

namespace smoother::core {

/// Streaming configuration.
struct OnlineSmootherConfig {
  /// The streaming path defaults to warm-started solves: each interval's QP
  /// seeds from the previous one's iterates (fewer ADMM iterations; see
  /// micro_qp_warmstart). Unlike the batch figures there is no byte-exact
  /// baseline to preserve, and the warm schedule is equally optimal.
  /// OnlineSmoother cold-starts the first plan after a degraded-mode
  /// recovery — fallback intervals rewrite the battery trajectory, so the
  /// cached duals describe a stale world.
  ///
  /// The per-interval QP on this streaming hot path also rides the
  /// structured O(m) KKT fast path (structured_solver, on by default):
  /// setup and every ADMM iteration are linear in the horizon length and
  /// allocation-free, which is what bounds the on-request plan latency
  /// (see micro_structured_solver and DESIGN.md §4g).
  FlexibleSmoothingConfig flexible_smoothing = [] {
    FlexibleSmoothingConfig fs;
    fs.warm_start = true;
    return fs;
  }();
  util::Minutes sample_step = util::kFiveMinutes;
  util::Kilowatts rated_power{976.0};

  /// Intervals to observe before smoothing starts (threshold learning).
  std::size_t warmup_intervals = 24;

  /// Sliding window of interval variances the thresholds derive from.
  std::size_t history_intervals = 24 * 28;

  /// CDF levels for the Region-I / Region-II-2 thresholds.
  double stable_cdf = 0.25;
  double extreme_cdf = 0.95;

  /// Telemetry sanitization. rated_power_kw is filled in from rated_power
  /// at construction when left at 0.
  resilience::TelemetryGuardConfig telemetry_guard;

  /// Consecutive healthy intervals required to leave degraded mode and
  /// resume QP planning (recovery hysteresis).
  std::size_t recovery_intervals = 3;

  /// An interval with more than this fraction of guard-repaired samples is
  /// not planned on — the window is mostly fabricated data.
  double max_faulted_fraction = 0.5;

  void validate() const;
};

/// Typed rejection for OnlineSmoother::import_state when a snapshot is
/// internally coherent but *disagrees with the constructing configuration*
/// — calibrated thresholds that are not what this config derives from the
/// snapshot's own variance history. The decided behaviour is REJECT, never
/// silently adopt: a fleet restoring 10k tenants must fail loudly on the
/// tenant whose checkpoint came from a differently-configured smoother,
/// because adopting foreign thresholds would silently change every
/// subsequent region decision. Derives from std::invalid_argument so
/// existing catch sites keep working; callers that want to distinguish
/// "config drift" from "corrupt state" catch this type.
class StateMismatchError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// A completed interval's decision record.
struct OnlineIntervalRecord {
  std::size_t index = 0;          ///< interval sequence number
  Region region = Region::kStable;
  bool smoothed = false;          ///< battery engaged (QP plan or fallback)
  bool warmup = false;            ///< still learning thresholds
  bool degraded = false;          ///< processed while in degraded mode
  resilience::FallbackReason fallback = resilience::FallbackReason::kNone;
  double cf_variance = 0.0;
  double variance_before = 0.0;
  double variance_after = 0.0;
  std::size_t solver_iterations = 0;  ///< ADMM iterations (0: no QP ran)
};

/// The streaming middleware.
class OnlineSmoother {
 public:
  /// Forecast oracle: called at each interval boundary with the index of
  /// the interval about to be planned; returns the predicted samples
  /// (points_per_interval of them). A deployment would back this with its
  /// wind/solar predictor (the paper cites 5-10 %-error models). Without
  /// one, the previous interval is used as a persistence forecast — cheap
  /// but markedly weaker on 5-minute wind. An oracle that throws, returns
  /// the wrong length or returns non-finite values does not kill the
  /// stream; the interval falls back (FallbackReason::kOracleFailed).
  using ForecastOracle =
      std::function<std::vector<double>(std::size_t interval_index)>;

  /// Battery health monitor: polled once per interval; false marks the
  /// battery unavailable (maintenance, BMS fault, injected outage) and the
  /// interval passes through untouched.
  using BatteryMonitor = std::function<bool(std::size_t interval_index)>;

  /// Per-interval solver retuning hook: a returned value replaces the
  /// configured QpSettings for that interval's plan.
  using SolverSettingsHook =
      std::function<std::optional<solver::QpSettings>(std::size_t)>;

  /// Every extension point of the streaming smoother, in one value. This
  /// is the single hooks entry point: pass at construction or replace
  /// wholesale with set_hooks(); the individual setters below are thin
  /// deprecated forwarders kept for one release.
  ///
  /// The observer is non-owning and called once per completed interval
  /// (after the interval's output is committed) with an
  /// obs::IntervalEvent; obs::TracingIntervalObserver plugs the metrics/
  /// tracing layer in through it. Observer exceptions are swallowed (the
  /// hot path is no-throw) and counted as `core.online.observer_errors`.
  struct Hooks {
    ForecastOracle forecast_oracle;
    BatteryMonitor battery_monitor;
    SolverSettingsHook solver_settings;
    /// Non-owning; null disables observation.
    obs::IntervalObserver* observer = nullptr;
  };

  /// The complete streaming state as plain data: everything push() mutates,
  /// nothing that is configuration. export_state()/import_state() are the
  /// checkpoint boundary the smoother::persist codec serializes — the core
  /// layer stays free of any on-disk format knowledge.
  ///
  /// Deliberately absent: the QP solver cache and its warm-start iterates.
  /// Warm starts are an optimization, not stream state — import_state()
  /// cold-starts the planner (exactly like a degraded-mode recovery), so a
  /// restored smoother re-plans from scratch rather than trusting iterates
  /// from a world it can no longer verify.
  struct StreamState {
    bool degraded = false;
    std::uint64_t healthy_streak = 0;
    std::uint64_t pending_faulted = 0;
    std::vector<double> pending;            ///< samples of the open interval
    std::vector<double> previous_interval;  ///< persistence forecast source
    std::vector<double> variance_history;   ///< threshold learning window
    double stable_below = 0.0;              ///< RegionThresholds
    double extreme_above = 0.0;
    bool calibrated = false;
    std::uint64_t intervals_completed = 0;  ///< interval cursor
    std::uint64_t output_samples = 0;       ///< total output produced ever
    /// Last <= points_per_interval output samples: what on-line consumers
    /// (and the dsim audit) read back after an interval commits.
    std::vector<double> output_tail;
    double guard_last_good_kw = 0.0;
    battery::BatteryState battery;
    resilience::HealthReport health;
  };

  /// Battery is owned by the smoother (moved in). Throws
  /// std::invalid_argument on bad config.
  OnlineSmoother(OnlineSmootherConfig config, battery::Battery battery);
  OnlineSmoother(OnlineSmootherConfig config, battery::Battery battery,
                 Hooks hooks);

  /// Replaces all hooks at once (clear by passing a default Hooks{}).
  /// Precedence contract (pinned by tests): set_hooks() is wholesale — it
  /// overwrites every field, including ones previously set through the
  /// deprecated setters; each deprecated setter writes only its own field
  /// and never clobbers the others. Last writer wins per field.
  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  [[nodiscard]] const Hooks& hooks() const { return hooks_; }

  /// Deprecated: use Hooks/set_hooks(). Forwards to hooks_.forecast_oracle.
  void set_forecast_oracle(ForecastOracle oracle) {
    hooks_.forecast_oracle = std::move(oracle);
  }

  /// Deprecated: use Hooks/set_hooks(). Forwards to hooks_.battery_monitor.
  void set_battery_monitor(BatteryMonitor monitor) {
    hooks_.battery_monitor = std::move(monitor);
  }

  /// Deprecated: use Hooks/set_hooks(). Forwards to hooks_.solver_settings.
  void set_solver_settings_hook(SolverSettingsHook hook) {
    hooks_.solver_settings = std::move(hook);
  }

  /// Pushes one generation sample (kW). When the sample completes an
  /// interval, the interval is processed and its record returned; the
  /// smoothed samples become available via output(). Never throws.
  std::optional<OnlineIntervalRecord> push(double generation_kw);

  /// Reports a missing sample (telemetry gap); the guard fills it by
  /// persistence. Same return contract as push().
  std::optional<OnlineIntervalRecord> push_missing();

  /// An interval caught mid-flight between push_prepare and push_commit:
  /// everything the smoother decided before the QP solve, and — when
  /// needs_solve() — the prepared problem a batching caller may solve
  /// externally. Opaque apart from the listed accessors; one PendingInterval
  /// serves one prepare/commit round trip and may be reused across rounds.
  class PendingInterval {
   public:
    PendingInterval() = default;

    /// A QP solve is pending (smoothable interval on the planned path, the
    /// forecast and preparation succeeded, no solution provided yet). False
    /// once provide_solution() ran or when the interval needs no solve —
    /// push_commit then completes it without one.
    [[nodiscard]] bool needs_solve() const { return needs_solve_ && !solved_; }

    /// needs_solve() and the prepared problem is batch-safe (structured,
    /// pooled, cold-started — see PreparedPlan::batchable). The batching
    /// caller solves problem() under qp_settings() through a
    /// solver::BatchSolver and hands the lane's result back with
    /// provide_solution(); non-batchable pending solves are left for
    /// push_commit's scalar routing.
    [[nodiscard]] bool batchable() const {
      return needs_solve() && prepared_.batchable;
    }

    [[nodiscard]] const solver::QpProblem& problem() const {
      return prepared_.problem;
    }
    [[nodiscard]] const solver::QpSettings& qp_settings() const {
      return prepared_.settings;
    }
    [[nodiscard]] std::size_t horizon() const { return prepared_.m; }

    /// Supplies the externally-computed solution for the pending solve.
    void provide_solution(solver::QpResult solution) {
      solution_ = std::move(solution);
      solved_ = true;
    }

   private:
    friend class OnlineSmoother;

    bool active_ = false;        ///< between begin_interval and commit
    bool needs_solve_ = false;   ///< the QP path was reached and prepared
    bool solved_ = false;        ///< solution_ holds a usable result
    bool telemetry_ok_ = false;
    bool battery_ok_ = false;
    bool smoothable_ = false;
    util::TimeSeries window_;     ///< the completed interval's samples
    util::TimeSeries predicted_;  ///< the forecast the plan was prepared on
    OnlineIntervalRecord record_;
    PreparedPlan prepared_;
    solver::QpResult solution_;
    /// Forecast/preparation failure captured in begin_interval; commit
    /// turns it into the fallback the monolithic path would take.
    std::optional<resilience::Error> plan_error_;
    std::chrono::steady_clock::time_point interval_start_;
  };

  /// Two-phase push for batching callers (the fleet engine): identical to
  /// push() except that when the sample completes an interval, processing
  /// stops at the QP-solve boundary and the half-open interval is parked in
  /// `pending`. Returns true exactly when push() would have returned a
  /// record; the caller MUST then push_commit(pending) before pushing any
  /// further sample to this smoother (the open-interval state is shared).
  /// Unlike push() this may throw — on the contract violation above.
  bool push_prepare(double generation_kw, PendingInterval& pending);

  /// push_missing()'s counterpart to push_prepare.
  bool push_missing_prepare(PendingInterval& pending);

  /// Completes an interval parked by push_prepare: runs the scalar solve if
  /// one is still pending (exactly what push() would have run), executes the
  /// plan or the fallback, commits the stream state and returns the record.
  /// Throws std::logic_error when `pending` holds no in-flight interval.
  OnlineIntervalRecord push_commit(PendingInterval& pending);

  /// Captures the complete streaming state (see StreamState). Pure
  /// observation: the smoother is unchanged.
  [[nodiscard]] StreamState export_state() const;

  /// export_state() into a caller-owned StreamState, reusing its vector
  /// capacity. For per-interval checkpoint loops, where a fresh StreamState
  /// per capture would pay four allocations per interval.
  void export_state_into(StreamState& state) const;

  /// Replaces the streaming state wholesale with a captured one. The
  /// configuration (and hooks) stay as constructed — a checkpoint restores
  /// *state*, never config — and the state is validated against it: throws
  /// std::invalid_argument on any internally inconsistent or out-of-domain
  /// field (oversized pending window, non-finite samples, thresholds that
  /// contradict the calibration flag, battery outside the corridor...).
  /// On success records() restarts empty with indices continuing from
  /// intervals_completed, output() restarts from the tail, and the first
  /// subsequent plan cold-starts the solver.
  /// Config-disagreement is additionally rejected with StateMismatchError:
  /// a calibrated snapshot's thresholds must be exactly (bitwise) what this
  /// smoother's CDF levels derive from the snapshot's variance history —
  /// the invariant every genuine same-config export satisfies, and the
  /// check that catches a checkpoint written under different
  /// stable_cdf/extreme_cdf settings before it can silently skew every
  /// subsequent region decision.
  void import_state(const StreamState& state);

  /// Bounds the per-stream memory that otherwise grows forever: keeps only
  /// the newest `keep_output_samples` of output() and `keep_records` of
  /// records(), advancing the import_state-style cursor bases so
  /// intervals_completed() and the absolute sample positions are unchanged.
  /// Erase-only (no allocation) — the fleet engine calls this once per
  /// completed interval to hold 10k+ tenants at a fixed footprint. Keeping
  /// fewer output samples than points_per_interval would truncate the tail
  /// a checkpoint needs, so the floor is one full interval.
  void compact(std::size_t keep_output_samples, std::size_t keep_records);

  /// Routes this stream's QP solves through a shared solver::SolverPool
  /// (batched factorization sharing across tenants; see
  /// FlexibleSmoothing::set_shared_solver_pool for the contract — requires
  /// warm_start off, pool must outlive the smoother, one pool per thread
  /// domain). Null detaches.
  void set_shared_solver_pool(solver::SolverPool* pool) {
    smoothing_.set_shared_solver_pool(pool);
  }

  /// All smoothed output produced since construction or the last
  /// import_state() (same step as the input; trails the input by up to one
  /// interval).
  [[nodiscard]] const util::TimeSeries& output() const { return output_; }

  /// Intervals processed since construction or the last import_state().
  [[nodiscard]] const std::vector<OnlineIntervalRecord>& records() const {
    return records_;
  }

  /// Lifetime interval cursor: intervals completed across import_state()
  /// boundaries. Equals records().size() unless a state was imported; the
  /// next completed interval gets this index.
  [[nodiscard]] std::size_t intervals_completed() const {
    return interval_base_ + records_.size();
  }

  /// Current thresholds (defaults until warmup completes).
  [[nodiscard]] const RegionThresholds& thresholds() const {
    return thresholds_;
  }

  /// True once warmup has completed and thresholds are data-derived.
  [[nodiscard]] bool calibrated() const { return calibrated_; }

  /// True while the recovery hysteresis keeps the QP path disabled.
  [[nodiscard]] bool degraded() const { return mode_ == Mode::kDegraded; }

  /// Fault / fallback / recovery counters since construction.
  [[nodiscard]] const resilience::HealthReport& health() const {
    return health_;
  }

  [[nodiscard]] const battery::Battery& battery() const { return battery_; }

  /// Aggregate solver-cache lifecycle counters of the planning engine
  /// (setups, solves, warm starts, factorization reuse). The degraded-mode
  /// recovery contract — the first post-recovery plan cold-starts, later
  /// ones warm-start again — is pinned through these counters by
  /// test_online and observed by the dsim harness.
  [[nodiscard]] SolverCacheStats solver_cache_stats() const {
    return smoothing_.solver_cache_stats();
  }

 private:
  enum class Mode { kNormal, kDegraded };

  std::optional<OnlineIntervalRecord> accept_sample(
      resilience::GuardedSample sample);
  /// Shared push body: accounts the sample; when it completes an interval,
  /// runs begin_interval into `pending` and returns true.
  bool prepare_sample(resilience::GuardedSample sample,
                      PendingInterval& pending);
  /// First half of interval processing: classification, health gates, and —
  /// on the planned path — forecast + QP preparation. Mutates nothing the
  /// commit half reads back except through `pending`.
  void begin_interval(PendingInterval& pending);
  /// Second half: solve (if still pending), execute/fallback, output and
  /// stream-state commit, telemetry. begin_interval + finish_interval is
  /// the old monolithic process path, split at the solve.
  void finish_interval(PendingInterval& pending);
  /// The fallible planning tail after begin_interval: scalar-solve when no
  /// solution was provided, assemble and execute the plan. Returns the
  /// delivered series, or the fault that forced a fallback; solver
  /// telemetry (iteration count) is written onto `record` either way.
  resilience::Result<util::TimeSeries> complete_plan(
      PendingInterval& pending, OnlineIntervalRecord& record);
  resilience::Result<std::vector<double>> fetch_forecast(std::size_t index);
  /// Cheap degraded-mode plan: track the previous interval's mean with the
  /// battery, no QP. Returns the delivered series.
  util::TimeSeries execute_fallback_plan(const util::TimeSeries& window);
  void refresh_thresholds();

  OnlineSmootherConfig config_;
  FlexibleSmoothing smoothing_;
  battery::Battery battery_;
  Hooks hooks_;
  resilience::TelemetryGuard guard_;
  resilience::HealthReport health_;
  Mode mode_ = Mode::kNormal;
  /// push_prepare ran begin_interval and the commit is still outstanding;
  /// guards against pushing into the half-processed open interval.
  bool interval_in_flight_ = false;
  std::size_t healthy_streak_ = 0;
  std::size_t pending_faulted_ = 0;  ///< guard-repaired samples this interval
  std::vector<double> pending_;          ///< samples of the open interval
  std::vector<double> previous_interval_;  ///< persistence forecast source
  std::deque<double> variance_history_;
  RegionThresholds thresholds_;
  bool calibrated_ = false;
  util::TimeSeries output_;
  std::vector<OnlineIntervalRecord> records_;
  /// Cursor bases carried across import_state(): records_/output_ hold only
  /// what happened since, the bases remember what came before.
  std::size_t interval_base_ = 0;
  std::size_t output_base_ = 0;
};

}  // namespace smoother::core
