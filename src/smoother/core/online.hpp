// Online (streaming) Smoother.
//
// The batch pipeline (FlexibleSmoothing::smooth) sees the whole trace; a
// deployed middleware sees samples as they arrive. OnlineSmoother is the
// stateful counterpart:
//
//   * samples are pushed one at a time; each completed interval is planned
//     and executed before the next begins;
//   * the interval about to start is predicted with a persistence forecast
//     (next interval ~ the last one) unless a SupplyForecaster-backed
//     oracle is attached, mirroring how a real predictor would slot in;
//   * region thresholds are *learned online*: the first `warmup_intervals`
//     pass through unsmoothed while their variances accumulate, then the
//     CDF thresholds are derived and kept up to date over a sliding
//     history window.
//
// push() returns the smoothed value for each completed sample with one
// interval of latency (decisions are made at interval boundaries, as in
// the paper).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "smoother/battery/battery.hpp"
#include "smoother/core/flexible_smoothing.hpp"
#include "smoother/core/region.hpp"
#include "smoother/util/time_series.hpp"
#include "smoother/util/units.hpp"

namespace smoother::core {

/// Streaming configuration.
struct OnlineSmootherConfig {
  FlexibleSmoothingConfig flexible_smoothing;
  util::Minutes sample_step = util::kFiveMinutes;
  util::Kilowatts rated_power{976.0};

  /// Intervals to observe before smoothing starts (threshold learning).
  std::size_t warmup_intervals = 24;

  /// Sliding window of interval variances the thresholds derive from.
  std::size_t history_intervals = 24 * 28;

  /// CDF levels for the Region-I / Region-II-2 thresholds.
  double stable_cdf = 0.25;
  double extreme_cdf = 0.95;

  void validate() const;
};

/// A completed interval's decision record.
struct OnlineIntervalRecord {
  std::size_t index = 0;          ///< interval sequence number
  Region region = Region::kStable;
  bool smoothed = false;
  bool warmup = false;            ///< still learning thresholds
  double cf_variance = 0.0;
  double variance_before = 0.0;
  double variance_after = 0.0;
};

/// The streaming middleware.
class OnlineSmoother {
 public:
  /// Forecast oracle: called at each interval boundary with the index of
  /// the interval about to be planned; returns the predicted samples
  /// (points_per_interval of them). A deployment would back this with its
  /// wind/solar predictor (the paper cites 5-10 %-error models). Without
  /// one, the previous interval is used as a persistence forecast — cheap
  /// but markedly weaker on 5-minute wind.
  using ForecastOracle =
      std::function<std::vector<double>(std::size_t interval_index)>;

  /// Battery is owned by the smoother (moved in). Throws
  /// std::invalid_argument on bad config.
  OnlineSmoother(OnlineSmootherConfig config, battery::Battery battery);

  /// Attaches (or clears, with nullptr) the forecast oracle.
  void set_forecast_oracle(ForecastOracle oracle) {
    oracle_ = std::move(oracle);
  }

  /// Pushes one generation sample (kW). When the sample completes an
  /// interval, the interval is processed and its record returned; the
  /// smoothed samples become available via output().
  std::optional<OnlineIntervalRecord> push(double generation_kw);

  /// All smoothed output produced so far (same step as the input;
  /// trails the input by up to one interval).
  [[nodiscard]] const util::TimeSeries& output() const { return output_; }

  /// Intervals processed so far.
  [[nodiscard]] const std::vector<OnlineIntervalRecord>& records() const {
    return records_;
  }

  /// Current thresholds (defaults until warmup completes).
  [[nodiscard]] const RegionThresholds& thresholds() const {
    return thresholds_;
  }

  /// True once warmup has completed and thresholds are data-derived.
  [[nodiscard]] bool calibrated() const { return calibrated_; }

  [[nodiscard]] const battery::Battery& battery() const { return battery_; }

 private:
  void process_interval();
  void refresh_thresholds();

  OnlineSmootherConfig config_;
  FlexibleSmoothing smoothing_;
  battery::Battery battery_;
  ForecastOracle oracle_;
  std::vector<double> pending_;          ///< samples of the open interval
  std::vector<double> previous_interval_;  ///< persistence forecast source
  std::deque<double> variance_history_;
  RegionThresholds thresholds_;
  bool calibrated_ = false;
  util::TimeSeries output_;
  std::vector<OnlineIntervalRecord> records_;
};

}  // namespace smoother::core
