// Evaluation metrics (paper Section III-B and IV).
//
// "Energy switching times" counts how often the cluster's power source
// flips between wind and grid, iSwitch-style: whenever the renewable supply
// crosses the demand level, the cluster migrates load between the
// renewable-powered and grid-powered sides, and each migration is costly.
// A deadband (hysteresis) variant is provided because real controllers
// debounce marginal crossings; the paper's plain counting is the default.
#pragma once

#include <cstddef>

#include "smoother/util/time_series.hpp"
#include "smoother/util/units.hpp"

namespace smoother::core {

/// Number of supply/demand crossings: transitions of the predicate
/// supply >= demand between consecutive samples. Series must share a shape.
[[nodiscard]] std::size_t energy_switching_times(
    const util::TimeSeries& supply, const util::TimeSeries& demand);

/// Hysteresis variant: the source switches to wind only when supply rises
/// above demand * (1 + deadband) and back to grid only when it falls below
/// demand * (1 - deadband). deadband = 0 reduces to the plain count.
[[nodiscard]] std::size_t energy_switching_times_hysteresis(
    const util::TimeSeries& supply, const util::TimeSeries& demand,
    double deadband);

/// Renewable energy actually used: per-sample min(supply, demand),
/// integrated to kWh.
[[nodiscard]] util::KilowattHours renewable_energy_used(
    const util::TimeSeries& supply, const util::TimeSeries& demand);

/// Renewable power utilization (paper Fig. 17): used / generated. Zero when
/// nothing was generated.
[[nodiscard]] double renewable_utilization(const util::TimeSeries& supply,
                                           const util::TimeSeries& demand);

/// Renewable energy that could not be used (the paper's Fig. 7 green area):
/// per-sample max(supply - demand, 0), integrated to kWh.
[[nodiscard]] util::KilowattHours unusable_renewable(
    const util::TimeSeries& supply, const util::TimeSeries& demand);

/// Energy that had to come from the grid: per-sample max(demand - supply,
/// 0), integrated to kWh.
[[nodiscard]] util::KilowattHours grid_energy_needed(
    const util::TimeSeries& supply, const util::TimeSeries& demand);

/// Largest step-to-step power change of a series, normalized per minute
/// (kW/min). A proxy for the maximum rate-of-change-of-frequency (ROCOF)
/// stress the paper says fluctuating renewables inflict on the grid: the
/// sharper the delivered-power ramps, the harder frequency regulation has
/// to work. Zero for series shorter than 2.
[[nodiscard]] double max_ramp_rate_kw_per_min(const util::TimeSeries& series);

}  // namespace smoother::core
