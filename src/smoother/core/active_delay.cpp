#include "smoother/core/active_delay.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>
#include <vector>

#include "smoother/obs/metrics.hpp"
#include "smoother/obs/trace.hpp"

namespace smoother::core {

namespace {

using sched::ClusterTimeline;
using sched::Job;
using sched::Placement;

std::size_t first_slot_at_or_after(util::Minutes t, util::Minutes step) {
  if (t <= util::Minutes{0.0}) return 0;
  return static_cast<std::size_t>(
      std::ceil(t.value() / step.value() - 1e-9));
}

/// Score (sum of per-slot values) the job would collect when started at
/// every candidate slot in [first, last], evaluated with a sliding window.
std::vector<double> window_gains(const std::vector<double>& slot_score,
                                 std::size_t first, std::size_t last,
                                 std::size_t length) {
  std::vector<double> gains;
  gains.reserve(last - first + 1);
  double acc = 0.0;
  for (std::size_t t = first; t < first + length; ++t) acc += slot_score[t];
  gains.push_back(acc);
  for (std::size_t start = first + 1; start <= last; ++start) {
    acc -= slot_score[start - 1];
    acc += slot_score[start + length - 1];
    gains.push_back(acc);
  }
  return gains;
}

}  // namespace

void ActiveDelayConfig::validate() const {
  if (offpeak_weight < 0.0 || offpeak_weight >= 1.0)
    throw std::invalid_argument(
        "ActiveDelayConfig: offpeak_weight must be in [0, 1)");
  if (!(0.0 <= peak_start_hour && peak_start_hour < peak_end_hour &&
        peak_end_hour <= 24.0))
    throw std::invalid_argument("ActiveDelayConfig: bad peak window");
  if (max_grid_draw_kw < 0.0)
    throw std::invalid_argument(
        "ActiveDelayConfig: grid cap must be >= 0 (0 disables)");
}

ActiveDelayScheduler::ActiveDelayScheduler(ActiveDelayConfig config)
    : config_(config) {
  config_.validate();
}

sched::ScheduleResult ActiveDelayScheduler::schedule(
    const sched::ScheduleRequest& request) const {
  request.validate();

  // Observability: one registry/tracer load per schedule() call. Everything
  // recorded here is a deterministic function of the request.
  obs::MetricsRegistry* metrics = obs::global_metrics();
  obs::Span span(obs::global_tracer(), "ad-schedule");
  std::size_t jobs_shifted = 0;      // placed later than their arrival slot
  std::size_t shift_slots = 0;       // total slots of deliberate delay
  std::size_t unschedulable = 0;     // did not fit inside the horizon
  double slack_consumed_min = 0.0;   // shift expressed in minutes

  const util::TimeSeries& renewable = request.renewable;
  const std::size_t slots = renewable.size();
  const util::Minutes step = renewable.step();
  const double slot_hours = step.value() / 60.0;

  ClusterTimeline timeline(slots, step, request.total_servers);

  // updateRemainRPower's ledger: renewable not yet claimed by any job.
  std::vector<double> remaining(slots);
  for (std::size_t i = 0; i < slots; ++i)
    remaining[i] = std::max(renewable[i] - request.baseline_power.value(), 0.0);

  // Peak-shaving ledger: grid headroom per slot if one more kW of demand
  // lands there. headroom_t = cap + renewable_t - scheduled_demand_t.
  const bool grid_capped = config_.max_grid_draw_kw > 0.0;
  std::vector<double> grid_headroom;
  if (grid_capped) {
    grid_headroom.resize(slots);
    for (std::size_t i = 0; i < slots; ++i)
      grid_headroom[i] = config_.max_grid_draw_kw + renewable[i] -
                         request.baseline_power.value();
  }

  // Arrival order, slack-ascending within one arrival slot (queueJob).
  std::vector<Job> order = request.jobs;
  std::stable_sort(order.begin(), order.end(), [&](const Job& a, const Job& b) {
    const std::size_t slot_a = first_slot_at_or_after(a.arrival, step);
    const std::size_t slot_b = first_slot_at_or_after(b.arrival, step);
    if (slot_a != slot_b) return slot_a < slot_b;
    return a.slack_at(a.arrival) < b.slack_at(b.arrival);
  });

  std::vector<Placement> placements;
  placements.reserve(order.size());
  for (const Job& job : order) {
    const std::size_t length = std::max<std::size_t>(
        timeline.slots_for(job.runtime), 1);
    const std::size_t arrival_slot = first_slot_at_or_after(job.arrival, step);

    Placement placement;
    placement.job_id = job.id;

    if (arrival_slot >= slots) {  // arrives after the horizon: unschedulable
      placement.start = timeline.horizon();
      placement.finish = placement.start + job.runtime;
      placement.met_deadline = false;
      placements.push_back(placement);
      ++unschedulable;
      continue;
    }

    // Candidate start range honouring the slack window and the horizon.
    std::size_t chosen = slots;
    if (job.deferrable_at(job.arrival)) {
      const double latest_min = job.latest_start().value();
      std::size_t last = arrival_slot;
      if (latest_min > 0.0) {
        last = std::min<std::size_t>(
            static_cast<std::size_t>(latest_min / step.value() + 1e-9),
            slots >= length ? slots - length : 0);
      }
      if (last >= arrival_slot && arrival_slot + length <= slots) {
        // Per-slot score: usable renewable, plus the off-peak bonus when
        // price awareness is enabled.
        std::vector<double> slot_score(slots);
        for (std::size_t t = 0; t < slots; ++t) {
          slot_score[t] = std::min(remaining[t], job.power.value());
          if (config_.offpeak_weight > 0.0) {
            const double hour = std::fmod(
                step.value() * static_cast<double>(t) / 60.0, 24.0);
            const bool peak = hour >= config_.peak_start_hour &&
                              hour < config_.peak_end_hour;
            if (!peak)
              slot_score[t] += config_.offpeak_weight * job.power.value();
          }
        }
        const auto gains =
            window_gains(slot_score, arrival_slot, last, length);
        // Sliding-window minimum of the grid headroom (monotonic deque):
        // a start is cap-feasible iff the job's power fits under the
        // headroom everywhere in its window.
        std::vector<double> window_min_headroom;
        if (grid_capped) {
          window_min_headroom.assign(gains.size(), 0.0);
          std::deque<std::size_t> deque_idx;
          for (std::size_t t = arrival_slot; t < arrival_slot + length - 1;
               ++t) {
            while (!deque_idx.empty() &&
                   grid_headroom[deque_idx.back()] >= grid_headroom[t])
              deque_idx.pop_back();
            deque_idx.push_back(t);
          }
          for (std::size_t k = 0; k < gains.size(); ++k) {
            const std::size_t tail = arrival_slot + k + length - 1;
            while (!deque_idx.empty() &&
                   grid_headroom[deque_idx.back()] >= grid_headroom[tail])
              deque_idx.pop_back();
            deque_idx.push_back(tail);
            while (deque_idx.front() < arrival_slot + k)
              deque_idx.pop_front();
            window_min_headroom[k] = grid_headroom[deque_idx.front()];
          }
        }
        double best_gain = -1.0;
        for (std::size_t k = 0; k < gains.size(); ++k) {
          const std::size_t start = arrival_slot + k;
          if (!timeline.can_place(start, length, job.servers)) continue;
          if (grid_capped && window_min_headroom[k] < job.power.value())
            continue;  // would breach the grid cap somewhere in the window
          const bool better = config_.prefer_early_on_tie
                                  ? gains[k] > best_gain
                                  : gains[k] >= best_gain;
          if (better) {
            best_gain = gains[k];
            chosen = start;
          }
        }
      }
    }
    if (chosen >= slots) {
      // Non-deferrable, slack window infeasible, or capacity-blocked
      // everywhere in the window: start as soon as possible (lines 19-21).
      chosen = timeline.earliest_fit(arrival_slot, length, job.servers);
    }

    if (chosen >= slots) {
      placement.start = timeline.horizon();
      placement.finish = placement.start + job.runtime;
      placement.met_deadline = false;
      placements.push_back(placement);
      ++unschedulable;
      continue;
    }

    if (chosen > arrival_slot) {
      ++jobs_shifted;
      shift_slots += chosen - arrival_slot;
      slack_consumed_min +=
          step.value() * static_cast<double>(chosen - arrival_slot);
    }
    timeline.place(chosen, length, job.servers, job.power);
    // updateRemainRPower: claim the renewable power this job will consume.
    double claimed_power_sum = 0.0;
    const std::size_t end = std::min(chosen + length, slots);
    for (std::size_t t = chosen; t < end; ++t) {
      const double claimed = std::min(remaining[t], job.power.value());
      remaining[t] -= claimed;
      claimed_power_sum += claimed;
      if (grid_capped) grid_headroom[t] -= job.power.value();
    }
    placement.start =
        util::Minutes{step.value() * static_cast<double>(chosen)};
    placement.finish = placement.start + job.runtime;
    placement.met_deadline = placement.finish <= job.deadline;
    placement.renewable_energy_used =
        util::KilowattHours{claimed_power_sum * slot_hours};
    placements.push_back(placement);
  }

  std::size_t deadline_misses = 0;
  for (const Placement& p : placements)
    if (!p.met_deadline) ++deadline_misses;

  if (metrics != nullptr) {
    metrics->counter("sched.ad.schedules").add(1);
    metrics->counter("sched.ad.jobs").add(order.size());
    metrics->counter("sched.ad.jobs_shifted").add(jobs_shifted);
    metrics->counter("sched.ad.shift_slots").add(shift_slots);
    metrics->counter("sched.ad.unschedulable").add(unschedulable);
    metrics->counter("sched.ad.deadline_misses").add(deadline_misses);
    metrics->gauge("sched.ad.last_slack_consumed_minutes")
        .set(slack_consumed_min);
  }
  span.field("jobs", order.size())
      .field("slots", slots)
      .field("jobs_shifted", jobs_shifted)
      .field("shift_slots", shift_slots)
      .field("slack_consumed_minutes", slack_consumed_min)
      .field("deadline_misses", deadline_misses);

  return sched::finalize_schedule(request, timeline, std::move(placements));
}

}  // namespace smoother::core
