// Fluctuation-region classification (paper Section III-B).
//
// The wind power trace is cut into fixed intervals (one hour = 12 points of
// 5 minutes) and each interval is assigned a region by its capacity-factor
// variance (Eq. 6):
//
//   Region-I     variance below the lower threshold: stable supply (calm or
//                rated-saturated turbine) — no smoothing needed;
//   Region-II-1  moderate fluctuation — Flexible Smoothing runs here;
//   Region-II-2  extreme fluctuation — smoothing it would need an outsized
//                battery rate/capacity, so it is excluded (the paper sizes
//                this region as the top 0.05-5 % of the variance CDF).
//
// Thresholds are derived from the supply history: the upper threshold is
// the variance at a chosen CDF level (the paper uses 0.95), the lower one
// at a small CDF level separating the flat intervals.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "smoother/util/time_series.hpp"
#include "smoother/util/units.hpp"

namespace smoother::core {

/// Region label of one interval.
enum class Region {
  kStable,      ///< Region-I
  kSmoothable,  ///< Region-II-1
  kExtreme,     ///< Region-II-2
};

[[nodiscard]] std::string to_string(Region region);

/// Variance thresholds separating the regions.
struct RegionThresholds {
  double stable_below = 1e-4;   ///< variance < this  => Region-I
  double extreme_above = 4e-2;  ///< variance >= this => Region-II-2

  /// Throws std::invalid_argument unless 0 <= stable_below < extreme_above.
  void validate() const;
};

/// Classification of one interval.
struct IntervalClass {
  std::size_t first_point = 0;  ///< index of the interval's first sample
  std::size_t points = 0;       ///< samples in the interval
  double cf_variance = 0.0;     ///< Eq. 6 value
  Region region = Region::kStable;
};

/// Classifier configuration.
struct RegionClassifierConfig {
  util::Kilowatts rated_power{800.0};  ///< P_rate of Eq. 6
  std::size_t points_per_interval = 12;
  RegionThresholds thresholds;

  /// When set, the per-interval fluctuation measure is the capacity-factor
  /// variance around the interval's least-squares *trend line* rather than
  /// its mean (Eq. 6 as written). A deterministic ramp — the clear-sky
  /// solar envelope, a steady wind front — then no longer counts as
  /// fluctuation. Pair with SmoothingObjective::kAroundTrend.
  bool detrend = false;
};

/// Derives thresholds from a supply history: `stable_cdf` and `extreme_cdf`
/// are CDF levels on the per-interval variance distribution (the paper's
/// Fig. 3/Fig. 6 procedure; extreme_cdf = 0.95 makes Region-II-2 the top
/// 5 %). Throws std::invalid_argument when levels are not
/// 0 <= stable < extreme <= 1 or when the history yields no intervals.
[[nodiscard]] RegionThresholds thresholds_from_history(
    const util::TimeSeries& power_history, util::Kilowatts rated_power,
    std::size_t points_per_interval, double stable_cdf, double extreme_cdf,
    bool detrend = false);

/// Splits a supply series into intervals and labels each one.
class RegionClassifier {
 public:
  explicit RegionClassifier(RegionClassifierConfig config);

  [[nodiscard]] const RegionClassifierConfig& config() const {
    return config_;
  }

  /// Classifies one interval's worth of samples.
  [[nodiscard]] Region classify_variance(double cf_variance) const;

  /// Classifies every complete interval of the series (a trailing partial
  /// interval is dropped).
  [[nodiscard]] std::vector<IntervalClass> classify(
      const util::TimeSeries& power) const;

  /// Classifies one interval's window directly (used when classification
  /// must run on a *forecast* of the interval rather than the actual
  /// series). `first_point` only labels the result. Throws
  /// std::invalid_argument when the window length differs from the
  /// configured interval length.
  [[nodiscard]] IntervalClass classify_window(const util::TimeSeries& window,
                                              std::size_t first_point) const;

  /// Fraction of intervals labelled with each region, in enum order.
  [[nodiscard]] static std::array<double, 3> region_fractions(
      const std::vector<IntervalClass>& intervals);

 private:
  RegionClassifierConfig config_;
};

}  // namespace smoother::core
