// Renewable generation forecasting for Flexible Smoothing.
//
// FS plans each interval's charge/discharge schedule *before* the interval
// happens, so in a real deployment it plans on a forecast. The paper keeps
// prediction out of scope, citing LSSVM-GSA-style models with 5-10 % error
// within 48 hours; this module supplies the interface FS plans through, a
// perfect forecaster (the paper's effective assumption), and a configurable
// noisy forecaster so the robustness of FS to forecast error can be
// measured (bench/ext_forecast_error).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "smoother/util/time_series.hpp"

namespace smoother::core {

/// Produces the generation forecast FS plans against.
class SupplyForecaster {
 public:
  virtual ~SupplyForecaster() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Forecast for an upcoming interval, given what the generation will
  /// actually be (the simulator knows the future; the forecaster's job is
  /// to corrupt it the way a real predictor would).
  [[nodiscard]] virtual util::TimeSeries forecast(
      const util::TimeSeries& actual) = 0;
};

/// The paper's implicit assumption: planning sees the true generation.
class PerfectForecaster final : public SupplyForecaster {
 public:
  [[nodiscard]] std::string name() const override { return "perfect"; }
  [[nodiscard]] util::TimeSeries forecast(
      const util::TimeSeries& actual) override {
    return actual;
  }
};

/// Multiplicative-error forecaster: each point is scaled by
/// (1 + bias + e_i) where e_i is AR(1) noise with the given standard
/// deviation — adjacent forecast errors are correlated, as with real
/// prediction models. Output is clamped at zero.
class NoisyForecaster final : public SupplyForecaster {
 public:
  /// `relative_sd` ~ 0.05-0.10 matches the LSSVM-GSA error band the paper
  /// cites. Throws std::invalid_argument for negative sd or |bias| >= 1.
  NoisyForecaster(double relative_sd, double bias, std::uint64_t seed);

  [[nodiscard]] std::string name() const override { return "noisy"; }
  [[nodiscard]] util::TimeSeries forecast(
      const util::TimeSeries& actual) override;

  [[nodiscard]] double relative_sd() const { return relative_sd_; }
  [[nodiscard]] double bias() const { return bias_; }

 private:
  double relative_sd_;
  double bias_;
  double error_state_ = 0.0;  ///< AR(1) carry across calls
  double ar_coefficient_ = 0.7;
  std::uint64_t rng_state_;
};

}  // namespace smoother::core
