// Multi-ESD Flexible Smoothing.
//
// Splits each interval's charge/discharge schedule across a heterogeneous
// storage portfolio (battery::EsdBank) inside one QP: the objective is
// still the variance of the delivered supply A = U + sum_d S_d (mean- or
// trend-based per the config), but each device carries its own rate box
// and SoC corridor, and a shared per-point constraint keeps the *net*
// charge within the energy actually generated (devices may exchange energy
// through the bus, which is lossless here, so only the net draw matters).
//
// With a single device this reduces exactly to FlexibleSmoothing's QP; the
// interesting case is a fast-shallow + deep-slow pair, where the QP
// naturally routes the high-frequency component to the fast device and the
// bulk shift to the deep one — the split a storage designer would hand-tune.
#pragma once

#include <cstddef>
#include <vector>

#include "smoother/battery/esd_bank.hpp"
#include "smoother/core/flexible_smoothing.hpp"
#include "smoother/core/region.hpp"
#include "smoother/util/time_series.hpp"

namespace smoother::core {

/// One interval's schedule across the bank.
struct MultiEsdPlan {
  /// schedules_kwh[d][i]: device d's signed energy at point i (positive
  /// discharges, the paper's S convention).
  std::vector<std::vector<double>> schedules_kwh;
  double variance_before = 0.0;
  double variance_after = 0.0;
  std::vector<double> max_rate_kw;  ///< per device
  solver::QpStatus solver_status = solver::QpStatus::kNumericalError;

  /// Net signed energy at point i, summed over devices.
  [[nodiscard]] double net_kwh(std::size_t i) const;
};

/// Whole-series result.
struct MultiEsdResult {
  util::TimeSeries supply;
  std::vector<IntervalClass> intervals;
  std::size_t smoothed_intervals = 0;
  std::vector<double> device_max_rate_kw;   ///< observed, per device
  std::vector<double> device_throughput_kwh;  ///< |energy| moved, per device
  double mean_variance_reduction = 0.0;
};

/// The planner/executor.
class MultiEsdSmoothing {
 public:
  /// Reuses FlexibleSmoothingConfig (interval length, discharge-cap
  /// fraction, objective, QP settings); lookahead is not supported here
  /// and must be 1. Throws std::invalid_argument otherwise.
  explicit MultiEsdSmoothing(FlexibleSmoothingConfig config = {});

  [[nodiscard]] const FlexibleSmoothingConfig& config() const {
    return config_;
  }

  /// Plans one interval across the bank (pure; the bank is not mutated).
  /// Throws std::invalid_argument on an empty bank or a window shorter
  /// than 2 samples.
  [[nodiscard]] MultiEsdPlan plan_interval(
      const util::TimeSeries& generation,
      const battery::EsdBank& bank) const;

  /// Executes a plan device by device; returns the delivered supply.
  [[nodiscard]] util::TimeSeries execute_plan(const MultiEsdPlan& plan,
                                              const util::TimeSeries& generation,
                                              battery::EsdBank& bank) const;

  /// Full pipeline (analogous to FlexibleSmoothing::smooth).
  [[nodiscard]] MultiEsdResult smooth(const util::TimeSeries& generation,
                                      const RegionClassifier& classifier,
                                      battery::EsdBank& bank) const;

 private:
  FlexibleSmoothingConfig config_;
};

}  // namespace smoother::core
