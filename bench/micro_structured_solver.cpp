// Microbenchmark of the structured O(m) KKT fast path vs the dense solver.
//
// Ladder over horizon lengths m ∈ {72, 288, 1440} built from the Fig. 10
// day traces. For every (m, day) the same FS problem is solved twice:
//
//   dense      — untagged QpProblem with materialized P and A: O(m³) setup
//                (gram + Cholesky), O(m²) matvecs per ADMM iteration;
//   structured — the kSmoothing-tagged problem: O(m) tridiagonal +
//                Sherman-Morrison setup, O(m) implicit operators per
//                iteration (see solver/structured_kkt.hpp, DESIGN.md §4g).
//
// Three measurements per arm: setup µs (factorization only), per-iteration
// µs (fixed 120-iteration run at eps = 0, so both arms do identical
// iteration counts), and end-to-end interval latency (setup + solve at the
// deployment tolerance — what a cold plan_interval pays). Heap allocations
// are counted with an instrumented operator new; the per-iteration
// allocation delta must be zero on both paths (asserted in
// test_structured_kkt; reported here).
//
// Gate: end-to-end speedup >= 10x at m = 288 (the paper's day horizon),
// mirroring micro_qp_warmstart's 2x gate. The bench also replays the
// Fig. 10 FS pipeline with structured_solver on vs off and prints the
// supply/metric diffs (the two paths agree within solver tolerance, not
// bitwise). Emits BENCH_solver.json; --metrics-out exercises the
// solver.qp.structured_* counters for smoke_metrics_structured.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <new>
#include <sstream>

#include "common.hpp"
#include "smoother/persist/engine.hpp"

#include "smoother/battery/battery.hpp"
#include "smoother/power/turbine.hpp"
#include "smoother/solver/qp_solver.hpp"

namespace {
std::atomic<std::size_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace smoother;
using namespace smoother::bench;
using clock_type = std::chrono::steady_clock;

double elapsed_us(clock_type::time_point since) {
  return std::chrono::duration<double, std::micro>(clock_type::now() - since)
      .count();
}

/// Energy vector of horizon m from a Fig. 10 day trace (tiled past one day
/// for the 1440-point horizon).
std::vector<double> day_energy(std::size_t day, std::size_t m,
                               double dt_hours) {
  const trace::WindSpeedModel model(trace::fig10_day_params(day));
  const auto supply = power::TurbineCurve::enercon_e48().power_series(
                          model.generate_day(kSeedWind + day)) *
                      (kCapacitySmall.value() / 800.0);
  std::vector<double> u(m);
  for (std::size_t i = 0; i < m; ++i)
    u[i] = std::max(supply[i % supply.size()], 0.0) * dt_hours;
  return u;
}

/// The FS problem exactly as plan_interval builds it on the dense path.
solver::QpProblem dense_problem(const std::vector<double>& u, double b0,
                                const battery::BatterySpec& spec,
                                double dt_hours) {
  const std::size_t m = u.size();
  const double charge_cap = spec.max_charge_rate.value() * dt_hours;
  const double discharge_cap = std::min(
      spec.max_discharge_rate.value() * dt_hours, 0.9 * spec.capacity.value());
  solver::QpProblem problem;
  problem.p = solver::variance_quadratic_form(m);
  problem.q = problem.p * solver::Vector(u);
  problem.a = solver::Matrix(2 * m, m);
  problem.lower.assign(2 * m, 0.0);
  problem.upper.assign(2 * m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    problem.a(i, i) = 1.0;
    problem.lower[i] = -std::min(u[i], charge_cap);
    problem.upper[i] = discharge_cap;
    for (std::size_t t = 0; t <= i; ++t) problem.a(m + i, t) = 1.0;
    problem.lower[m + i] = std::min(b0 - spec.max_energy().value(), 0.0);
    problem.upper[m + i] = std::max(b0 - spec.min_energy().value(), 0.0);
  }
  return problem;
}

/// The same problem on the structured path: tagged, no dense P/A, O(m)
/// centered q.
solver::QpProblem structured_problem(const solver::QpProblem& dense,
                                     const std::vector<double>& u) {
  solver::QpProblem problem;
  const std::size_t m = u.size();
  problem.structure = solver::QpStructure::kSmoothing;
  double u_sum = 0.0;
  for (const double v : u) u_sum += v;
  const double u_mean = u_sum / static_cast<double>(m);
  problem.q.resize(m);
  for (std::size_t i = 0; i < m; ++i)
    problem.q[i] = 2.0 / static_cast<double>(m) * (u[i] - u_mean);
  problem.lower = dense.lower;
  problem.upper = dense.upper;
  return problem;
}

struct ArmMeasurement {
  double setup_us = 0.0;
  double per_iter_us = 0.0;
  double end_to_end_us = 0.0;   ///< setup + solve at deployment tolerance
  double objective = 0.0;
  double primal_residual = 0.0;
  double dual_residual = 0.0;
  std::size_t iterations = 0;
  std::size_t solve_allocs = 0;     ///< allocations in one 120-iter solve
  std::size_t per_iter_allocs = 0;  ///< allocation delta per extra iteration
};

constexpr std::size_t kTimedIterations = 120;

ArmMeasurement measure_arm(const solver::QpProblem& problem,
                           const solver::QpSettings& deploy) {
  ArmMeasurement out;

  // Setup cost: factorization only.
  {
    solver::QpSolver solver;
    const auto t0 = clock_type::now();
    (void)solver.setup(problem, deploy);
    out.setup_us = elapsed_us(t0);
  }

  // Per-iteration cost and allocation counts at a fixed iteration budget
  // (eps = 0 forces exactly max_iterations on both arms). Allocations are
  // measured around a post-warm-up solve() only, so one-time buffer growth
  // never pollutes the per-iteration delta.
  const auto fixed_run = [&](std::size_t iterations, double* out_us) {
    solver::QpSolver solver;
    solver::QpSettings fixed = deploy;
    fixed.eps_abs = 0.0;
    fixed.eps_rel = 0.0;
    fixed.max_iterations = iterations;
    (void)solver.setup(problem, fixed);
    (void)solver.solve();  // warm the one-time buffers
    solver.reset_warm_start();
    const std::size_t a0 = g_alloc_count.load(std::memory_order_relaxed);
    const auto t0 = clock_type::now();
    (void)solver.solve();
    if (out_us) *out_us = elapsed_us(t0);
    return g_alloc_count.load(std::memory_order_relaxed) - a0;
  };
  {
    double fixed_us = 0.0;
    out.solve_allocs = fixed_run(kTimedIterations, &fixed_us);
    out.per_iter_us = fixed_us / static_cast<double>(kTimedIterations);
    const std::size_t doubled_allocs = fixed_run(2 * kTimedIterations, nullptr);
    out.per_iter_allocs =
        doubled_allocs > out.solve_allocs
            ? (doubled_allocs - out.solve_allocs) / kTimedIterations
            : 0;
  }

  // End-to-end interval latency: what a cold plan_interval pays.
  {
    solver::QpSolver solver;
    const auto t0 = clock_type::now();
    (void)solver.setup(problem, deploy);
    const auto r = solver.solve();
    out.end_to_end_us = elapsed_us(t0);
    out.objective = r.objective;
    out.primal_residual = r.primal_residual;
    out.dual_residual = r.dual_residual;
    out.iterations = r.iterations;
  }
  return out;
}

struct LadderRow {
  std::size_t m = 0;
  ArmMeasurement dense;
  ArmMeasurement structured;
  double objective_diff = 0.0;
  [[nodiscard]] double end_to_end_speedup() const {
    return structured.end_to_end_us > 0.0
               ? dense.end_to_end_us / structured.end_to_end_us
               : 0.0;
  }
};

/// Fig. 10 pipeline replay: max supply divergence between structured-on and
/// structured-off runs of the full FS pipeline on one day.
struct PipelineDiff {
  std::string day;
  double max_supply_diff_kw = 0.0;
  double variance_reduction_diff = 0.0;
  double max_rate_diff_kw = 0.0;
};

PipelineDiff pipeline_diff(std::size_t day, const char* name) {
  const trace::WindSpeedModel model(trace::fig10_day_params(day));
  const auto supply = power::TurbineCurve::enercon_e48().power_series(
                          model.generate_day(kSeedWind + day)) *
                      (kCapacitySmall.value() / 800.0);
  const auto history =
      power::TurbineCurve::enercon_e48().power_series(
          model.generate(util::days(28.0), util::kFiveMinutes,
                         kSeedWind + 100 + day)) *
      (kCapacitySmall.value() / 800.0);
  auto config = sim::default_config(kCapacitySmall);
  const core::Smoother middleware(config);
  const auto classifier = middleware.make_classifier(history);

  const auto run = [&](bool structured) {
    auto fs_config = config.flexible_smoothing;
    fs_config.structured_solver = structured;
    const core::FlexibleSmoothing fs(fs_config);
    battery::Battery battery(config.battery, config.initial_soc_fraction);
    return fs.smooth(supply, classifier, battery);
  };
  const auto on = run(true);
  const auto off = run(false);

  PipelineDiff diff;
  diff.day = name;
  for (std::size_t i = 0; i < on.supply.size(); ++i)
    diff.max_supply_diff_kw = std::max(
        diff.max_supply_diff_kw, std::abs(on.supply[i] - off.supply[i]));
  diff.variance_reduction_diff =
      std::abs(on.mean_variance_reduction() - off.mean_variance_reduction());
  diff.max_rate_diff_kw =
      std::abs(on.required_max_rate_kw - off.required_max_rate_kw);
  return diff;
}

}  // namespace

int main(int argc, char** argv) {
  smoother::bench::Harness harness(argc, argv);
  sim::print_experiment_header(
      std::cout, "micro: structured solver",
      "structured O(m) KKT fast path vs dense QP (Fig. 10 day horizons)");

  auto config = sim::default_config(kCapacitySmall);
  const battery::Battery battery(config.battery, config.initial_soc_fraction);
  const battery::BatterySpec& spec = battery.spec();
  const double dt_hours = 5.0 / 60.0;
  const double b0 = battery.energy().value();
  solver::QpSettings deploy = config.flexible_smoothing.qp;
  // Bound the worst case at m = 1440: the comparison needs identical
  // stopping rules, not full convergence of the slow arm.
  deploy.max_iterations = 4000;

  static constexpr std::size_t kHorizons[] = {72, 288, 1440};
  std::vector<LadderRow> rows;
  for (std::size_t hi = 0; hi < 3; ++hi) {
    const std::size_t m = kHorizons[hi];
    const std::size_t day = hi % 4;  // one Fig. 10 day preset per rung
    const std::vector<double> u = day_energy(day, m, dt_hours);
    const solver::QpProblem dense = dense_problem(u, b0, spec, dt_hours);
    const solver::QpProblem structured = structured_problem(dense, u);
    LadderRow row;
    row.m = m;
    row.dense = measure_arm(dense, deploy);
    row.structured = measure_arm(structured, deploy);
    row.objective_diff =
        std::abs(row.dense.objective - row.structured.objective);
    rows.push_back(row);
  }

  sim::TablePrinter table({"m", "setup_us (dense/structured)",
                           "per_iter_us (dense/structured)",
                           "end_to_end_us (dense/structured)", "speedup",
                           "obj_diff", "allocs/iter (d/s)"});
  for (const auto& row : rows) {
    table.add_row(
        {std::to_string(row.m),
         util::strfmt("%.0f / %.1f", row.dense.setup_us,
                      row.structured.setup_us),
         util::strfmt("%.1f / %.2f", row.dense.per_iter_us,
                      row.structured.per_iter_us),
         util::strfmt("%.0f / %.0f", row.dense.end_to_end_us,
                      row.structured.end_to_end_us),
         util::strfmt("%.1fx", row.end_to_end_speedup()),
         util::strfmt("%.2e", row.objective_diff),
         util::strfmt("%zu / %zu", row.dense.per_iter_allocs,
                      row.structured.per_iter_allocs)});
  }
  table.print(std::cout);

  std::cout << "\nFig. 10 pipeline, structured on vs off (solver-tolerance "
               "agreement, not bitwise):\n";
  static constexpr const char* kDayNames[] = {"May-02 (calm)", "May-14",
                                              "May-23", "May-18 (roughest)"};
  std::vector<PipelineDiff> diffs;
  sim::TablePrinter diff_table({"day", "max_supply_diff_kw",
                                "variance_reduction_diff", "max_rate_diff_kw"});
  for (std::size_t day = 0; day < 4; ++day) {
    diffs.push_back(pipeline_diff(day, kDayNames[day]));
    const auto& d = diffs.back();
    diff_table.add_row({d.day, util::strfmt("%.3e", d.max_supply_diff_kw),
                        util::strfmt("%.3e", d.variance_reduction_diff),
                        util::strfmt("%.3e", d.max_rate_diff_kw)});
  }
  diff_table.print(std::cout);

  const LadderRow& gate_row = rows[1];  // m = 288
  const double speedup = gate_row.end_to_end_speedup();
  const bool pass = speedup >= 10.0;
  std::cout << util::strfmt(
      "\noverall: m=288 end-to-end %.0f us dense vs %.0f us structured "
      "(%.1fx, target >= 10x): %s\n",
      gate_row.dense.end_to_end_us, gate_row.structured.end_to_end_us, speedup,
      pass ? "PASS" : "FAIL");

  if (auto* metrics = harness.metrics()) {
    metrics->gauge("bench.solver.structured_speedup_m288").set(speedup);
    metrics->gauge("bench.solver.dense_setup_us_m288")
        .set(gate_row.dense.setup_us);
    metrics->gauge("bench.solver.structured_setup_us_m288")
        .set(gate_row.structured.setup_us);
    metrics->gauge("bench.solver.structured_per_iter_allocs")
        .set(static_cast<double>(gate_row.structured.per_iter_allocs));
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"micro_structured_solver\",\n"
       << "  \"scenario\": \"FS interval QP, structured O(m) KKT vs dense, "
          "Fig. 10 day horizons\",\n"
       << util::strfmt("  \"speedup_m288\": %.2f,\n", speedup)
       << "  \"ladder\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const auto arm_json = [](const ArmMeasurement& a) {
      return util::strfmt(
          "{\"setup_us\": %.2f, \"per_iter_us\": %.3f, "
          "\"end_to_end_us\": %.2f, \"iterations\": %zu, "
          "\"solve_allocs\": %zu, \"per_iter_allocs\": %zu, "
          "\"objective\": %.6f, \"primal_residual\": %.3e, "
          "\"dual_residual\": %.3e}",
          a.setup_us, a.per_iter_us, a.end_to_end_us, a.iterations,
          a.solve_allocs, a.per_iter_allocs, a.objective, a.primal_residual,
          a.dual_residual);
    };
    json << util::strfmt(
        "    {\"m\": %zu, \"speedup\": %.2f, \"objective_diff\": %.3e,\n"
        "     \"dense\": %s,\n     \"structured\": %s}%s\n",
        row.m, row.end_to_end_speedup(), row.objective_diff,
        arm_json(row.dense).c_str(), arm_json(row.structured).c_str(),
        i + 1 < rows.size() ? "," : "");
  }
  json << "  ],\n  \"fig10_pipeline_diff\": [\n";
  for (std::size_t i = 0; i < diffs.size(); ++i) {
    const auto& d = diffs[i];
    json << util::strfmt(
        "    {\"day\": \"%s\", \"max_supply_diff_kw\": %.4e, "
        "\"variance_reduction_diff\": %.4e, \"max_rate_diff_kw\": %.4e}%s\n",
        d.day.c_str(), d.max_supply_diff_kw, d.variance_reduction_diff,
        d.max_rate_diff_kw, i + 1 < diffs.size() ? "," : "");
  }
  json << "  ]\n}\n";
  persist::atomic_write_file("BENCH_solver.json", json.str());
  std::cout << "\nwrote BENCH_solver.json\n";
  return pass ? 0 : 1;
}
