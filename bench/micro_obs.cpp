// Microbenchmark of the smoother::obs layer itself.
//
// The observability contract is "free when off, cheap when on":
//   * off — no registry/tracer installed; every instrumentation site in
//     the solver / online smoother / runtime collapses to one relaxed
//     atomic load and a null check;
//   * on  — counters are relaxed atomic adds, histograms a bucket scan,
//     spans one mutex-guarded string append per completed span.
//
// Measured here, on the Fig. 6 threshold-sweep grid (28 full smooth +
// dispatch passes over a week-long trace, run at --threads):
//   * wall time with obs off vs obs fully on (registry + tracer), best of
//     five — asserted to stay within a 5 % overhead budget;
//   * byte-identity of the sweep results with obs on vs off — the layer
//     must observe, never perturb;
//   * raw instrument throughput (counter adds/sec, histogram records/sec,
//     spans/sec) so the per-op cost has a trajectory to regress against.
//
// Emits BENCH_obs.json (and the same JSON on stdout). Exits non-zero when
// the overhead budget or the identity check fails, so ctest catches a
// regression in either.
#include <sstream>

#include "common.hpp"
#include "smoother/obs/metrics.hpp"
#include "smoother/persist/engine.hpp"
#include "smoother/obs/profile.hpp"
#include "smoother/obs/trace.hpp"

namespace {

using namespace smoother;
using namespace smoother::bench;

struct SweepSample {
  double wall_ms = 0.0;
  std::string digest;       ///< serialized results, for the identity check
  std::uint64_t events = 0; ///< trace events collected (obs-on runs)
};

/// One full fig06-style threshold-sweep grid pass.
SweepSample run_threshold_grid(const sim::WebScenario& scenario,
                               std::size_t threads) {
  runtime::ParamGrid grid;
  grid.axis("cdf_level", {0.80, 0.85, 0.90, 0.95, 0.98, 0.995, 1.0})
      .axis("stable_cdf", {0.0, 0.10, 0.25, 0.40});
  runtime::SweepRunner runner(
      runtime::SweepOptions{threads, 0, "micro-obs-sweep"});
  const auto results = runner.run_grid(
      grid, [&scenario](const runtime::ParamGrid::Point& point,
                        runtime::TaskContext&) {
        auto config = sim::default_config(kCapacitySmall);
        config.extreme_cdf = point["cdf_level"];
        config.stable_cdf = point["stable_cdf"];
        const core::Smoother middleware(config);
        const auto smoothing = middleware.smooth_supply(scenario.supply);
        return sim::dispatch(smoothing.supply, scenario.demand,
                             sim::DispatchPolicy::kDirect)
            .switching_times;
      });
  std::ostringstream digest;
  for (const auto& result : results)
    digest << result.index << ":" << result.value << ";";
  SweepSample sample;
  sample.wall_ms = runner.last_wall_ms();
  sample.digest = digest.str();
  return sample;
}

/// Best-of-N grid pass, optionally with the full obs layer installed.
SweepSample best_of(const sim::WebScenario& scenario, std::size_t threads,
                    int reps, bool with_obs) {
  SweepSample best;
  for (int rep = 0; rep < reps; ++rep) {
    SweepSample sample;
    if (with_obs) {
      obs::MetricsRegistry registry;
      obs::Tracer tracer;
      const obs::GlobalMetricsScope metrics_scope(&registry);
      const obs::GlobalTracerScope tracer_scope(&tracer);
      sample = run_threshold_grid(scenario, threads);
      sample.events = tracer.event_count();
    } else {
      sample = run_threshold_grid(scenario, threads);
    }
    if (rep == 0 || sample.wall_ms < best.wall_ms) {
      const std::uint64_t events = std::max(best.events, sample.events);
      best = sample;
      best.events = events;
    }
  }
  return best;
}

/// Raw instrument throughput, ops/sec over `ops` operations.
template <class Op>
double ops_per_sec(std::size_t ops, Op&& op) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ops; ++i) op(i);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return static_cast<double>(ops) / elapsed.count();
}

}  // namespace

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  sim::print_experiment_header(
      std::cout, "micro: obs",
      "overhead and identity of the metrics/tracing layer on the Fig. 6 "
      "sweep");

  const auto scenario = sim::make_web_scenario(
      trace::WebWorkloadPresets::nasa(), trace::WindSitePresets::texas_10(),
      kCapacitySmall, kWeek, harness.seed_or(kSeedWind));

  constexpr int kReps = 5;
  const std::size_t threads = harness.threads();
  const SweepSample off = best_of(scenario, threads, kReps, false);
  const SweepSample on = best_of(scenario, threads, kReps, true);

  const double overhead_pct =
      off.wall_ms > 0.0 ? 100.0 * (on.wall_ms - off.wall_ms) / off.wall_ms
                        : 0.0;
  const bool within_budget = overhead_pct < 5.0;
  const bool identical = on.digest == off.digest;

  // Raw instrument cost (obs on): these run outside the sweep so the
  // numbers isolate the instrument, not the workload.
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("micro.counter");
  const double counter_ops = ops_per_sec(
      10'000'000, [&counter](std::size_t) { counter.add(1); });
  obs::Histogram& histogram = registry.timing_histogram("micro.hist");
  const double histogram_ops = ops_per_sec(
      1'000'000, [&histogram](std::size_t i) {
        histogram.record(static_cast<double>(i % 512));
      });
  obs::Tracer tracer;
  const double span_ops = ops_per_sec(100'000, [&tracer](std::size_t i) {
    obs::Span span(&tracer, "micro-span");
    span.field("i", i);
  });
  // And the off path: a dead counter lookup through the null global.
  const double off_ops = ops_per_sec(10'000'000, [](std::size_t) {
    obs::MetricsRegistry* metrics = obs::global_metrics();
    if (metrics != nullptr) metrics->counter("never").add(1);
  });

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"micro_obs\",\n"
       << "  \"grid\": \"fig06_threshold_sweep (7 levels x 4 splits)\",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"hardware_concurrency\": " << runtime::resolve_thread_count(0)
       << ",\n"
       << util::strfmt("  \"wall_ms_obs_off\": %.2f,\n", off.wall_ms)
       << util::strfmt("  \"wall_ms_obs_on\": %.2f,\n", on.wall_ms)
       << util::strfmt("  \"overhead_pct\": %.2f,\n", overhead_pct)
       << "  \"overhead_budget_pct\": 5.0,\n"
       << "  \"within_budget\": " << (within_budget ? "true" : "false")
       << ",\n"
       << "  \"outputs_identical\": " << (identical ? "true" : "false")
       << ",\n"
       << "  \"trace_events_per_sweep\": " << on.events << ",\n"
       << util::strfmt("  \"counter_adds_per_sec\": %.0f,\n", counter_ops)
       << util::strfmt("  \"histogram_records_per_sec\": %.0f,\n",
                       histogram_ops)
       << util::strfmt("  \"spans_per_sec\": %.0f,\n", span_ops)
       << util::strfmt("  \"disabled_site_checks_per_sec\": %.0f\n", off_ops)
       << "}\n";

  std::cout << json.str();
  persist::atomic_write_file("BENCH_obs.json", json.str());
  std::cout << "\nwrote BENCH_obs.json";
  if (!identical)
    std::cout << "; ERROR: sweep results changed with observability on!";
  if (!within_budget)
    std::cout << util::strfmt("; ERROR: obs overhead %.2f%% over the 5%% "
                              "budget!",
                              overhead_pct);
  if (identical && within_budget)
    std::cout << "; obs on/off byte-identical, overhead within budget.";
  std::cout << "\n";
  return identical && within_budget ? 0 : 1;
}
