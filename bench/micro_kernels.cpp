// Roofline micro-bench of the solver::simd kernel layer (DESIGN.md §4k).
//
// Three tiers of measurement, all against the out-of-line scalar reference
// implementations in solver::scalar_ref (compiled with auto-vectorization
// off, so the baseline is honest scalar code, not whatever the compiler
// SLP'd):
//
//   1. Single-stream kernels at m ∈ {72, 288, 1440}: the ADMM vector
//      updates (axpby, dual_update, clamp projection), the residual
//      reduction (max_abs_sum3) and the fs_ops scans (prefix/suffix sums).
//      Reported as ns/element and effective GB/s (bytes moved per element
//      × elements / time) — the roofline coordinates: kernels near the
//      measured stream bandwidth are memory-bound and cannot be expected
//      to scale with SIMD width.
//
//   2. The lane-batched tridiagonal substitution sweep
//      (BandedCholesky::solve_lanes_into) at m ∈ {72, 288, 1440} ×
//      K ∈ {1, 8, 64} lanes vs K scalar solve_into calls — the kernel the
//      SoA layout exists for (unit-stride across lanes regardless of m).
//
//   3. BatchSolver end-to-end: K same-horizon FS interval QPs solved as
//      one SoA ADMM batch vs K cold scalar QpSolver solves, in lanes/sec,
//      plus the cross-check that the batched results agree with scalar
//      (bit-identical on non-reassociating SIMD tiers).
//
// Gate (hardware-conditional): on tiers with SIMD width >= 4 (avx2 — see
// SMOOTHER_NATIVE / SMOOTHER_SIMD in the top-level CMakeLists), the
// vectorized fs_ops/ADMM kernels must be >= 2x faster than scalar_ref at
// m = 1440. On narrower tiers (the default SSE2 baseline vectorizes only
// the bit-exact elementwise kernels at width 2, and the scans stay
// sequential by design — that is what keeps the default build
// byte-identical) the gate reports SKIPPED and passes: there is no 2x to
// be had from width-2 memory-bound kernels, and the bit-exactness contract
// is the point of that tier.
//
// Emits BENCH_kernels.json (consumed by tools/bench_regress.py against
// bench/baselines/BENCH_kernels.json; the baseline records the SIMD tier
// and the regression gate skips on tier mismatch).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "smoother/persist/engine.hpp"
#include "smoother/solver/banded.hpp"
#include "smoother/solver/batch_solver.hpp"
#include "smoother/solver/qp_solver.hpp"
#include "smoother/solver/simd.hpp"

namespace simd = smoother::solver::simd;
namespace scalar_ref = smoother::solver::simd::scalar_ref;

namespace {

using namespace smoother;
using namespace smoother::bench;
using clock_type = std::chrono::steady_clock;

/// Defeats dead-code elimination without perturbing the timed loop.
volatile double g_sink = 0.0;

void sink(double v) { g_sink = g_sink + v; }

double seconds_since(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

simd::AlignedVector random_vec(std::size_t n, util::Rng& rng, double lo,
                               double hi) {
  simd::AlignedVector v(n);
  for (double& x : v) x = rng.uniform(lo, hi);
  return v;
}

/// Best-of-trials timing of `body` (which must process `elems` elements and
/// fold something into g_sink): runs enough reps per trial to cross ~2 ms,
/// keeps the fastest trial. Returns seconds per single execution of body.
template <class Body>
double time_kernel(std::size_t elems, const Body& body) {
  // Calibrate the rep count on one warm-up execution.
  body();
  auto t0 = clock_type::now();
  body();
  const double once = std::max(seconds_since(t0), 1e-9);
  const std::size_t reps =
      std::max<std::size_t>(1, static_cast<std::size_t>(2e-3 / once));
  double best = 1e300;
  for (int trial = 0; trial < 5; ++trial) {
    t0 = clock_type::now();
    for (std::size_t r = 0; r < reps; ++r) body();
    best = std::min(best, seconds_since(t0) / static_cast<double>(reps));
  }
  (void)elems;
  return best;
}

struct KernelRow {
  std::string name;
  std::size_t m = 0;
  std::size_t lanes = 1;          ///< 1 for single-stream kernels
  double bytes_per_elem = 0.0;    ///< traffic model for the GB/s column
  double simd_ns_per_elem = 0.0;
  double scalar_ns_per_elem = 0.0;
  double simd_gbs = 0.0;
  [[nodiscard]] double speedup() const {
    return simd_ns_per_elem > 0.0 ? scalar_ns_per_elem / simd_ns_per_elem
                                  : 0.0;
  }
};

KernelRow make_row(const std::string& name, std::size_t m, std::size_t lanes,
                   double bytes_per_elem, std::size_t elems, double simd_s,
                   double scalar_s) {
  KernelRow row;
  row.name = name;
  row.m = m;
  row.lanes = lanes;
  row.bytes_per_elem = bytes_per_elem;
  row.simd_ns_per_elem = simd_s * 1e9 / static_cast<double>(elems);
  row.scalar_ns_per_elem = scalar_s * 1e9 / static_cast<double>(elems);
  row.simd_gbs =
      bytes_per_elem * static_cast<double>(elems) / simd_s / 1e9;
  return row;
}

/// Single-stream kernel ladder at one horizon length.
void bench_stream_kernels(std::size_t m, util::Rng& rng,
                          std::vector<KernelRow>& rows) {
  const std::size_t n = 2 * m;  // ADMM constraint-space length
  simd::AlignedVector a = random_vec(n, rng, -1.0, 1.0);
  simd::AlignedVector b = random_vec(n, rng, -1.0, 1.0);
  simd::AlignedVector c = random_vec(n, rng, -1.0, 1.0);
  simd::AlignedVector lo = random_vec(n, rng, -2.0, -0.5);
  simd::AlignedVector hi = random_vec(n, rng, 0.5, 2.0);
  simd::AlignedVector out(n, 0.0);

  // axpby: out = alpha a + beta b  (the ADMM x-update shape).
  rows.push_back(make_row(
      "axpby", m, 1, 24.0, n,
      time_kernel(n,
                  [&] {
                    simd::axpby(1.6, a.data(), -0.6, b.data(), out.data(), n);
                    sink(out[0]);
                  }),
      time_kernel(n, [&] {
        scalar_ref::axpby(1.6, a.data(), -0.6, b.data(), out.data(),
                                  n);
        sink(out[0]);
      })));

  // dual_update: y += rho (alpha u + beta v - w).
  rows.push_back(make_row(
      "dual_update", m, 1, 40.0, n,
      time_kernel(n,
                  [&] {
                    simd::dual_update(0.1, 1.6, a.data(), -0.6, b.data(),
                                      c.data(), out.data(), n);
                    sink(out[0]);
                  }),
      time_kernel(n, [&] {
        scalar_ref::dual_update(0.1, 1.6, a.data(), -0.6, b.data(),
                                        c.data(), out.data(), n);
        sink(out[0]);
      })));

  // clamp_spans: the bound projection.
  rows.push_back(make_row(
      "clamp", m, 1, 32.0, n,
      time_kernel(n,
                  [&] {
                    std::memcpy(out.data(), a.data(), n * sizeof(double));
                    simd::clamp_spans(out.data(), lo.data(), hi.data(), n);
                    sink(out[0]);
                  }),
      time_kernel(n, [&] {
        std::memcpy(out.data(), a.data(), n * sizeof(double));
        scalar_ref::clamp_spans(out.data(), lo.data(), hi.data(), n);
        sink(out[0]);
      })));

  // max_abs_sum3: the dual-residual reduction.
  rows.push_back(make_row(
      "residual_max", m, 1, 24.0, n,
      time_kernel(
          n,
          [&] { sink(simd::max_abs_sum3(a.data(), b.data(), c.data(), n)); }),
      time_kernel(n, [&] {
        sink(scalar_ref::max_abs_sum3(a.data(), b.data(), c.data(), n));
      })));

  // fs_ops scans (m-length): prefix sum (apply_a) and suffix sum
  // (apply_at). Vector paths exist only on reassociating tiers; elsewhere
  // these time the sequential loop against itself (speedup ~1).
  rows.push_back(make_row(
      "prefix_sum", m, 1, 16.0, m,
      time_kernel(
          m, [&] { sink(simd::prefix_sum_into(a.data(), out.data(), m)); }),
      time_kernel(m, [&] {
        sink(scalar_ref::prefix_sum_into(a.data(), out.data(), m));
      })));
  rows.push_back(make_row(
      "suffix_sum", m, 1, 24.0, m,
      time_kernel(m,
                  [&] {
                    simd::suffix_sum_add(a.data(), b.data(), out.data(), m);
                    sink(out[0]);
                  }),
      time_kernel(m, [&] {
        scalar_ref::suffix_sum_add(a.data(), b.data(), out.data(), m);
        sink(out[0]);
      })));
}

/// Lane-batched tridiagonal sweep vs K scalar sweeps.
void bench_tridiag_lanes(std::size_t m, std::size_t lanes, util::Rng& rng,
                         std::vector<KernelRow>& rows) {
  const auto kkt = solver::StructuredKkt::factorize(m, 1e-6, 0.1);
  if (!kkt) return;
  const std::size_t stride =
      (lanes + simd::kWidth - 1) / simd::kWidth * simd::kWidth;
  simd::AlignedVector b(m * stride, 0.0);
  simd::AlignedVector x(m * stride, 0.0);
  simd::AlignedVector scratch(m * stride, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t l = 0; l < lanes; ++l)
      b[i * stride + l] = rng.uniform(-1.0, 1.0);
  std::vector<double> b1(m), x1(m), s1(m);
  for (std::size_t i = 0; i < m; ++i) b1[i] = b[i * stride];

  const std::size_t elems = m * lanes;
  const double batched_s = time_kernel(elems, [&] {
    kkt->solve_lanes_into(b.data(), x.data(), scratch.data(), lanes, stride);
    sink(x[0]);
  });
  const double scalar_s = time_kernel(elems, [&] {
    for (std::size_t l = 0; l < lanes; ++l) {
      kkt->solve_into(b1, x1, s1);
      sink(x1[0]);
    }
  });
  rows.push_back(make_row("kkt_solve_lanes", m, lanes, 16.0, elems, batched_s,
                          scalar_s));
}

/// The FS interval problem on the structured path (as plan_interval builds
/// it), with per-lane q from a jittered energy profile.
solver::QpProblem structured_interval(std::size_t m, util::Rng& rng) {
  const double dt_hours = 5.0 / 60.0;
  std::vector<double> u(m);
  for (double& v : u) v = std::max(rng.normal(450.0, 140.0), 0.0) * dt_hours;
  solver::QpProblem problem;
  problem.structure = solver::QpStructure::kSmoothing;
  double u_sum = 0.0;
  for (const double v : u) u_sum += v;
  const double u_mean = u_sum / static_cast<double>(m);
  problem.q.resize(m);
  for (std::size_t i = 0; i < m; ++i)
    problem.q[i] = 2.0 / static_cast<double>(m) * (u[i] - u_mean);
  problem.lower.assign(2 * m, 0.0);
  problem.upper.assign(2 * m, 0.0);
  const double charge_cap = 40.0, discharge_cap = 80.0, corridor = 400.0;
  for (std::size_t i = 0; i < m; ++i) {
    problem.lower[i] = -std::min(u[i], charge_cap);
    problem.upper[i] = discharge_cap;
    problem.lower[m + i] = -corridor;
    problem.upper[m + i] = corridor;
  }
  return problem;
}

struct BatchRow {
  std::size_t m = 0;
  std::size_t lanes = 0;
  double batched_lanes_per_s = 0.0;
  double scalar_lanes_per_s = 0.0;
  double max_x_diff = 0.0;  ///< batched vs scalar (0.0 = bit-identical)
  [[nodiscard]] double speedup() const {
    return scalar_lanes_per_s > 0.0
               ? batched_lanes_per_s / scalar_lanes_per_s
               : 0.0;
  }
};

BatchRow bench_batch_solver(std::size_t m, std::size_t lanes,
                            util::Rng& rng) {
  BatchRow row;
  row.m = m;
  row.lanes = lanes;
  solver::QpSettings settings;  // deployment defaults
  std::vector<solver::QpProblem> problems;
  problems.reserve(lanes);
  for (std::size_t l = 0; l < lanes; ++l)
    problems.push_back(structured_interval(m, rng));

  solver::BatchSolver batch;
  if (batch.setup(m, settings) != solver::QpStatus::kSolved) return row;
  std::vector<solver::BatchSolver::Lane> lane_views;
  for (const auto& p : problems)
    lane_views.push_back({p.q, p.lower, p.upper});
  std::vector<solver::QpResult> batched(lanes);
  const double batched_s = time_kernel(lanes, [&] {
    batch.solve(lane_views, batched);
    sink(batched[0].objective);
  });

  solver::QpSolver scalar;
  (void)scalar.setup(problems[0], settings);
  std::vector<solver::QpResult> reference(lanes);
  const double scalar_s = time_kernel(lanes, [&] {
    for (std::size_t l = 0; l < lanes; ++l) {
      scalar.reset_warm_start();
      reference[l] = scalar.solve(problems[l], settings);
      sink(reference[l].objective);
    }
  });

  for (std::size_t l = 0; l < lanes; ++l)
    for (std::size_t i = 0; i < m; ++i)
      row.max_x_diff = std::max(
          row.max_x_diff, std::abs(batched[l].x[i] - reference[l].x[i]));
  row.batched_lanes_per_s = static_cast<double>(lanes) / batched_s;
  row.scalar_lanes_per_s = static_cast<double>(lanes) / scalar_s;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  smoother::bench::Harness harness(argc, argv);
  sim::print_experiment_header(
      std::cout, "micro: solver kernels",
      "SIMD kernel roofline + lane-batched solves vs scalar reference");
  std::cout << "simd tier: " << simd::tier_name() << " (width "
            << simd::kWidth << ", reassociates "
            << (simd::kReassociates ? "yes" : "no") << ")\n\n";

  util::Rng rng(20190701);
  static constexpr std::size_t kHorizons[] = {72, 288, 1440};
  static constexpr std::size_t kLaneCounts[] = {1, 8, 64};

  std::vector<KernelRow> rows;
  for (const std::size_t m : kHorizons) bench_stream_kernels(m, rng, rows);
  for (const std::size_t m : kHorizons)
    for (const std::size_t lanes : kLaneCounts)
      bench_tridiag_lanes(m, lanes, rng, rows);

  sim::TablePrinter table(
      {"kernel", "m", "lanes", "simd ns/elem", "scalar ns/elem", "GB/s",
       "speedup"});
  for (const auto& row : rows)
    table.add_row({row.name, std::to_string(row.m),
                   std::to_string(row.lanes),
                   util::strfmt("%.2f", row.simd_ns_per_elem),
                   util::strfmt("%.2f", row.scalar_ns_per_elem),
                   util::strfmt("%.1f", row.simd_gbs),
                   util::strfmt("%.2fx", row.speedup())});
  table.print(std::cout);

  std::cout << "\nBatchSolver end-to-end (K same-horizon FS intervals, SoA "
               "batch vs K cold scalar solves):\n";
  std::vector<BatchRow> batch_rows;
  for (const std::size_t lanes : kLaneCounts)
    batch_rows.push_back(bench_batch_solver(288, lanes, rng));
  sim::TablePrinter batch_table({"m", "lanes", "batched lanes/s",
                                 "scalar lanes/s", "speedup", "max_x_diff"});
  for (const auto& row : batch_rows)
    batch_table.add_row({std::to_string(row.m), std::to_string(row.lanes),
                         util::strfmt("%.1f", row.batched_lanes_per_s),
                         util::strfmt("%.1f", row.scalar_lanes_per_s),
                         util::strfmt("%.2fx", row.speedup()),
                         util::strfmt("%.3e", row.max_x_diff)});
  batch_table.print(std::cout);

  // Correctness cross-check rides along with the bench on every tier: on
  // non-reassociating tiers the batched results must be bit-identical.
  bool agree = true;
  for (const auto& row : batch_rows) {
    const double tol = simd::kReassociates ? 1e-6 : 0.0;
    if (row.max_x_diff > tol) agree = false;
  }

  // Gate: >= 2x on the vectorized ADMM/fs_ops kernels at m = 1440, armed
  // only on width >= 4 tiers (see the file comment).
  double worst_gate_speedup = 1e300;
  std::string worst_gate_kernel = "none";
  const bool gate_armed = simd::kWidth >= 4;
  if (gate_armed) {
    for (const auto& row : rows) {
      if (row.m != 1440 || row.lanes != 1) continue;
      if (row.speedup() < worst_gate_speedup) {
        worst_gate_speedup = row.speedup();
        worst_gate_kernel = row.name;
      }
    }
  }
  const bool gate_pass = !gate_armed || worst_gate_speedup >= 2.0;
  if (gate_armed)
    std::cout << util::strfmt(
        "\ngate: worst m=1440 kernel speedup %.2fx (%s, target >= 2x): %s\n",
        worst_gate_speedup, worst_gate_kernel.c_str(),
        gate_pass ? "PASS" : "FAIL");
  else
    std::cout << "\ngate: SKIPPED (SIMD width " +
                     std::to_string(simd::kWidth) +
                     " < 4; the 2x kernel gate arms on avx2 builds — "
                     "SMOOTHER_NATIVE=ON or SMOOTHER_SIMD=avx2)\n";
  std::cout << (agree ? "batched-vs-scalar agreement: PASS\n"
                      : "batched-vs-scalar agreement: FAIL\n");

  if (auto* metrics = harness.metrics()) {
    metrics->gauge("bench.kernels.simd_width")
        .set(static_cast<double>(simd::kWidth));
    for (const auto& row : batch_rows)
      metrics->gauge("bench.kernels.batch_speedup_k" +
                     std::to_string(row.lanes))
          .set(row.speedup());
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"micro_kernels\",\n"
       << "  \"scenario\": \"solver::simd kernels + BatchSolver vs scalar "
          "reference\",\n"
       << "  \"tier\": \"" << simd::tier_name() << "\",\n"
       << util::strfmt("  \"width\": %zu,\n",
                       static_cast<std::size_t>(simd::kWidth))
       << util::strfmt("  \"reassociates\": %s,\n",
                       simd::kReassociates ? "true" : "false")
       << util::strfmt("  \"gate_armed\": %s,\n",
                       gate_armed ? "true" : "false")
       << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    json << util::strfmt(
        "    {\"name\": \"%s\", \"m\": %zu, \"lanes\": %zu, "
        "\"simd_ns_per_elem\": %.3f, \"scalar_ns_per_elem\": %.3f, "
        "\"gb_per_s\": %.2f, \"speedup\": %.3f}%s\n",
        row.name.c_str(), row.m, row.lanes, row.simd_ns_per_elem,
        row.scalar_ns_per_elem, row.simd_gbs, row.speedup(),
        i + 1 < rows.size() ? "," : "");
  }
  json << "  ],\n  \"batch_solver\": [\n";
  for (std::size_t i = 0; i < batch_rows.size(); ++i) {
    const auto& row = batch_rows[i];
    json << util::strfmt(
        "    {\"m\": %zu, \"lanes\": %zu, \"batched_lanes_per_s\": %.2f, "
        "\"scalar_lanes_per_s\": %.2f, \"speedup\": %.3f, "
        "\"max_x_diff\": %.4e}%s\n",
        row.m, row.lanes, row.batched_lanes_per_s, row.scalar_lanes_per_s,
        row.speedup(), row.max_x_diff, i + 1 < batch_rows.size() ? "," : "");
  }
  json << "  ]\n}\n";
  persist::atomic_write_file("BENCH_kernels.json", json.str());
  std::cout << "\nwrote BENCH_kernels.json\n";
  return (gate_pass && agree) ? 0 : 1;
}
