// Extension: FS robustness to renewable-generation forecast error.
//
// The paper plans FS on known generation and cites 5-10 %-error prediction
// models as the deployment-time source of that knowledge. This ablation
// sweeps the forecast error and measures how much smoothing quality
// survives: within-interval variance reduction, switching times, and the
// battery activity wasted on mispredicted intervals.
#include "common.hpp"

#include "smoother/core/forecast.hpp"

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Extension: forecast error",
      "FS quality vs renewable forecast error (paper cites 5-10% models)");

  const auto scenario = sim::make_web_scenario(
      trace::WebWorkloadPresets::nasa(), trace::WindSitePresets::texas_10(),
      kCapacitySmall, kWeek, kSeedWind);
  const auto config = sim::default_config(kCapacitySmall);
  const core::Smoother middleware(config);
  const core::RegionClassifier classifier =
      middleware.make_classifier(scenario.supply);

  const std::size_t raw_switches =
      sim::dispatch(scenario.supply, scenario.demand,
                    sim::DispatchPolicy::kDirect)
          .switching_times;

  sim::TablePrinter table({"forecast_error_%", "bias_%", "w_fs_switches",
                           "var_reduction_%", "battery_cycles"});
  struct Arm {
    double sigma;
    double bias;
  };
  for (const Arm arm : {Arm{0.0, 0.0}, Arm{0.025, 0.0}, Arm{0.05, 0.0},
                        Arm{0.10, 0.0}, Arm{0.20, 0.0}, Arm{0.30, 0.0},
                        Arm{0.05, 0.10}, Arm{0.05, -0.10}}) {
    battery::Battery battery(config.battery, config.initial_soc_fraction);
    core::NoisyForecaster forecaster(arm.sigma, arm.bias, kSeedWind + 1);
    const core::FlexibleSmoothing fs(config.flexible_smoothing);
    const auto smoothing = fs.smooth_with_forecast(scenario.supply, classifier,
                                                   battery, forecaster);
    const std::size_t switches =
        sim::dispatch(smoothing.supply, scenario.demand,
                      sim::DispatchPolicy::kDirect)
            .switching_times;
    table.add_row(
        {util::strfmt("%.1f", 100.0 * arm.sigma),
         util::strfmt("%+.0f", 100.0 * arm.bias), std::to_string(switches),
         util::strfmt("%.0f", 100.0 * smoothing.mean_variance_reduction()),
         util::strfmt("%.1f", battery.equivalent_full_cycles())});
  }
  table.print(std::cout);
  std::cout << util::strfmt("\n(raw supply, no FS: %zu switches)\n",
                            raw_switches);
  std::cout << "expected shape: graceful degradation -- at the cited 5-10% "
               "error FS keeps most of its benefit; optimistic bias hurts "
               "more than pessimistic (planned discharges the battery "
               "cannot back).\n";
  return 0;
}
