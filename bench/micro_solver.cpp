// Microbenchmark: the numerical kernels behind Flexible Smoothing.
//
// BM_FsQp measures one per-interval FS solve as a function of the interval
// length m (the paper uses m = 12; larger m = finer points or longer
// horizons). BM_Cholesky isolates the factorization, BM_GaussianFit the
// turbine-curve fitting path.
#include <benchmark/benchmark.h>

#include "harness.hpp"

#include "smoother/battery/battery.hpp"
#include "smoother/battery/esd_bank.hpp"
#include "smoother/core/flexible_smoothing.hpp"
#include "smoother/core/multi_esd.hpp"
#include "smoother/power/turbine.hpp"
#include "smoother/solver/cholesky.hpp"
#include "smoother/solver/qp.hpp"
#include "smoother/util/rng.hpp"

namespace {

using namespace smoother;

solver::QpProblem make_fs_like_problem(std::size_t m, std::uint64_t seed) {
  util::Rng rng(seed);
  solver::QpProblem problem;
  problem.p = solver::variance_quadratic_form(m);
  std::vector<double> u(m);
  for (double& v : u) v = rng.uniform(0.0, 70.0);  // kWh per 5-min point
  problem.q = problem.p * u;
  problem.a = solver::Matrix(2 * m, m);
  problem.lower.assign(2 * m, 0.0);
  problem.upper.assign(2 * m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    problem.a(i, i) = 1.0;
    problem.lower[i] = -u[i];
    problem.upper[i] = 36.6;
    for (std::size_t t = 0; t <= i; ++t) problem.a(m + i, t) = 1.0;
    problem.lower[m + i] = -18.0;
    problem.upper[m + i] = 18.0;
  }
  return problem;
}

void BM_FsQp(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto problem = make_fs_like_problem(m, 42);
  for (auto _ : state) {
    const auto result = solver::solve_qp(problem);
    benchmark::DoNotOptimize(result.x.data());
  }
  state.counters["iterations"] = 0;
}
BENCHMARK(BM_FsQp)->Arg(12)->Arg(24)->Arg(48)->Arg(96)->Arg(288);

void BM_Cholesky(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  solver::Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) b(r, c) = rng.normal(0.0, 1.0);
  solver::Matrix a = b * b.transpose();
  a.add_diagonal(static_cast<double>(n));
  for (auto _ : state) {
    auto factor = solver::Cholesky::factorize(a);
    benchmark::DoNotOptimize(factor);
  }
}
BENCHMARK(BM_Cholesky)->Arg(12)->Arg(48)->Arg(192);

void BM_GaussianFit(benchmark::State& state) {
  const auto points = power::TurbineCurve::e48_reference_points();
  std::vector<double> speeds, powers;
  for (const auto& [v, p] : points) {
    speeds.push_back(v);
    powers.push_back(p);
  }
  for (auto _ : state) {
    auto curve = power::GaussianSumCurve::fit(speeds, powers, 3);
    benchmark::DoNotOptimize(curve);
  }
}
BENCHMARK(BM_GaussianFit);

void BM_MultiEsdPlanInterval(benchmark::State& state) {
  // Two-device portfolio QP: 24 variables, 60 rows.
  core::MultiEsdSmoothing smoothing;
  battery::EsdBank bank = battery::EsdBank::fast_deep_pair(
      util::KilowattHours{80.0}, util::Kilowatts{488.0});
  util::Rng rng(5);
  util::TimeSeries generation(util::kFiveMinutes, 12);
  for (std::size_t i = 0; i < 12; ++i)
    generation[i] = rng.uniform(0.0, 800.0);
  for (auto _ : state) {
    auto plan = smoothing.plan_interval(generation, bank);
    benchmark::DoNotOptimize(plan.schedules_kwh.data());
  }
}
BENCHMARK(BM_MultiEsdPlanInterval);

void BM_FsPlanInterval(benchmark::State& state) {
  core::FlexibleSmoothing fs;
  battery::BatterySpec spec = battery::spec_for_max_rate(
      util::Kilowatts{488.0}, util::kFiveMinutes);
  spec.charge_efficiency = 1.0;
  spec.discharge_efficiency = 1.0;
  battery::Battery battery(spec);
  util::Rng rng(3);
  util::TimeSeries generation(util::kFiveMinutes, 12);
  for (std::size_t i = 0; i < 12; ++i)
    generation[i] = rng.uniform(0.0, 800.0);
  for (auto _ : state) {
    auto plan = fs.plan_interval(generation, battery);
    benchmark::DoNotOptimize(plan.schedule_kwh.data());
  }
}
BENCHMARK(BM_FsPlanInterval);

}  // namespace

// Harness integration: consume the shared bench flags (--threads /
// --metrics-out), leave google-benchmark's own flags for Initialize.
int main(int argc, char** argv) {
  const smoother::bench::Harness harness(
      argc, argv,
      smoother::bench::HarnessOptions{.description = "solver/smoothing microbenchmarks",
                                      .pass_through_unknown = true});
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
