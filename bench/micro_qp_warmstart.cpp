// Microbenchmark of the stateful QP solver's warm-start path.
//
// Scenario: the screen -> commit lifecycle on the Fig. 10 day traces. For
// every 12-point interval of each day the FS problem is first solved at a
// loose screening tolerance (1e-4: is this interval worth engaging the
// battery for?) and then refined to the deployment tolerance (1e-6) when
// the plan is committed. The refinement is where the stateful solver pays:
//
//   warm  — QpSolver::solve() continues from the screening iterate with the
//           cached KKT factorization (one update(), zero refactorizations);
//   cold  — solve_qp() re-solves the committed problem from scratch,
//           discarding the screening work.
//
// Cross-interval warm-starting is deliberately NOT what this measures: on
// 5-minute wind, consecutive intervals are nearly independent draws, so the
// previous optimum is no closer to the next one than the cold z-clamp
// initialization already is (measured ~1.0x; see the warm_start doc in
// flexible_smoothing.hpp). Continuation of a partially converged iterate on
// the *same* interval is the workload where warm-starting is sound and
// large, and it gates here at >= 2x fewer ADMM iterations.
//
// Emits BENCH_qp.json (and the same JSON on stdout) for the perf
// trajectory; --metrics-out additionally exercises the solver.qp.*
// counters for the smoke_metrics_qp schema check. Iteration counts are
// bit-reproducible run to run; only the wall-ms fields vary.
#include <chrono>
#include <sstream>

#include "common.hpp"
#include "smoother/persist/engine.hpp"

#include "smoother/battery/battery.hpp"
#include "smoother/power/turbine.hpp"
#include "smoother/solver/qp_solver.hpp"

namespace {

using namespace smoother;
using namespace smoother::bench;

constexpr std::size_t kPointsPerInterval = 12;
constexpr double kScreenEps = 1e-4;

/// The per-interval FS problem exactly as FlexibleSmoothing::plan_interval
/// builds it: minimize around-mean variance of the delivered energy,
/// subject to per-point battery rate boxes and the cumulative SoC corridor.
solver::QpProblem fs_problem(const std::vector<double>& u_kwh, double b0_kwh,
                             const battery::BatterySpec& spec,
                             double dt_hours) {
  const std::size_t m = u_kwh.size();
  const double charge_cap = spec.max_charge_rate.value() * dt_hours;
  const double discharge_cap = std::min(
      spec.max_discharge_rate.value() * dt_hours, 0.9 * spec.capacity.value());
  solver::QpProblem problem;
  problem.p = solver::variance_quadratic_form(m);
  problem.q = problem.p * solver::Vector(u_kwh);
  problem.a = solver::Matrix(2 * m, m);
  problem.lower.assign(2 * m, 0.0);
  problem.upper.assign(2 * m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    problem.a(i, i) = 1.0;
    problem.lower[i] = -std::min(u_kwh[i], charge_cap);
    problem.upper[i] = discharge_cap;
    for (std::size_t t = 0; t <= i; ++t) problem.a(m + i, t) = 1.0;
    problem.lower[m + i] = std::min(b0_kwh - spec.max_energy().value(), 0.0);
    problem.upper[m + i] = std::max(b0_kwh - spec.min_energy().value(), 0.0);
  }
  return problem;
}

struct DayResult {
  std::string name;
  std::size_t intervals = 0;
  double screen_iters = 0.0;  ///< mean, screening pass (shared by both arms)
  double cold_iters = 0.0;    ///< mean, commit solve from scratch
  double warm_iters = 0.0;    ///< mean, commit solve continued warm
  double cold_ms = 0.0;       ///< total wall ms, cold commit solves
  double warm_ms = 0.0;       ///< total wall ms, warm commit solves
  [[nodiscard]] double ratio() const {
    return warm_iters > 0.0 ? cold_iters / warm_iters : 0.0;
  }
};

DayResult run_day(std::size_t day, const char* name) {
  const trace::WindSpeedModel model(trace::fig10_day_params(day));
  const auto supply = power::TurbineCurve::enercon_e48().power_series(
                          model.generate_day(kSeedWind + day)) *
                      (kCapacitySmall.value() / 800.0);
  const auto config = sim::default_config(kCapacitySmall);
  const battery::Battery battery(config.battery, config.initial_soc_fraction);
  const battery::BatterySpec& spec = battery.spec();
  const double dt_hours = supply.step().value() / 60.0;
  const double b0 = battery.energy().value();  // mid-corridor initial SoC

  solver::QpSettings tight = config.flexible_smoothing.qp;
  solver::QpSettings loose = tight;
  loose.eps_abs = kScreenEps;
  loose.eps_rel = kScreenEps;

  DayResult result;
  result.name = name;
  solver::QpSolver solver;
  double screen_total = 0.0, cold_total = 0.0, warm_total = 0.0;
  for (std::size_t k = 0; k + kPointsPerInterval <= supply.size();
       k += kPointsPerInterval) {
    std::vector<double> u(kPointsPerInterval);
    for (std::size_t i = 0; i < kPointsPerInterval; ++i)
      u[i] = std::max(supply[k + i], 0.0) * dt_hours;
    const auto problem = fs_problem(u, b0, spec, dt_hours);

    // Screening pass at the loose tolerance — both arms start from this.
    solver.reset_warm_start();
    const auto screened = solver.solve(problem, loose);
    if (!screened.ok()) continue;

    using clock = std::chrono::steady_clock;
    const auto wall_ms = [](clock::time_point since) {
      return std::chrono::duration<double, std::milli>(clock::now() - since)
          .count();
    };

    // Warm arm: continue the screening iterate to the commit tolerance on
    // the cached factorization.
    const auto warm_start = clock::now();
    const auto warm = solver.solve(problem, tight);
    result.warm_ms += wall_ms(warm_start);

    // Cold arm: one-shot commit solve, screening work thrown away.
    const auto cold_start = clock::now();
    const auto cold = solver::solve_qp(problem, tight);
    result.cold_ms += wall_ms(cold_start);

    if (!warm.ok() || !cold.ok()) continue;
    screen_total += static_cast<double>(screened.iterations);
    warm_total += static_cast<double>(warm.iterations);
    cold_total += static_cast<double>(cold.iterations);
    ++result.intervals;
  }
  const auto n = static_cast<double>(result.intervals);
  if (result.intervals > 0) {
    result.screen_iters = screen_total / n;
    result.cold_iters = cold_total / n;
    result.warm_iters = warm_total / n;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  smoother::bench::Harness harness(argc, argv);
  sim::print_experiment_header(
      std::cout, "micro: qp warm start",
      "ADMM iterations, commit-time refinement warm vs cold (Fig. 10 days)");

  static constexpr const char* kDayNames[] = {"May-02 (calm)", "May-14",
                                              "May-23", "May-18 (roughest)"};
  std::vector<DayResult> days;
  for (std::size_t day = 0; day < 4; ++day)
    days.push_back(run_day(day, kDayNames[day]));

  sim::TablePrinter table({"day", "intervals", "screen_iters", "cold_iters",
                           "warm_iters", "iter_ratio"});
  double cold_sum = 0.0, warm_sum = 0.0, cold_ms = 0.0, warm_ms = 0.0;
  std::size_t intervals = 0;
  for (const auto& day : days) {
    table.add_row({day.name, std::to_string(day.intervals),
                   util::strfmt("%.1f", day.screen_iters),
                   util::strfmt("%.1f", day.cold_iters),
                   util::strfmt("%.1f", day.warm_iters),
                   util::strfmt("%.2fx", day.ratio())});
    const auto n = static_cast<double>(day.intervals);
    cold_sum += day.cold_iters * n;
    warm_sum += day.warm_iters * n;
    cold_ms += day.cold_ms;
    warm_ms += day.warm_ms;
    intervals += day.intervals;
  }
  table.print(std::cout);

  const double cold_mean = cold_sum / static_cast<double>(intervals);
  const double warm_mean = warm_sum / static_cast<double>(intervals);
  const double ratio = warm_mean > 0.0 ? cold_mean / warm_mean : 0.0;
  const bool pass = ratio >= 2.0;
  std::cout << util::strfmt(
      "\noverall: %zu intervals, cold %.1f vs warm %.1f mean ADMM "
      "iterations (%.2fx, target >= 2x): %s\n",
      intervals, cold_mean, warm_mean, ratio, pass ? "PASS" : "FAIL");

  if (auto* metrics = harness.metrics()) {
    metrics->gauge("bench.qp.cold_iterations_mean").set(cold_mean);
    metrics->gauge("bench.qp.warm_iterations_mean").set(warm_mean);
    metrics->gauge("bench.qp.iteration_ratio").set(ratio);
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"micro_qp_warmstart\",\n"
       << "  \"scenario\": \"screen at eps 1e-4, commit at eps 1e-6; warm = "
          "continue screening iterate, cold = from scratch\",\n"
       << util::strfmt("  \"intervals\": %zu,\n", intervals)
       << util::strfmt("  \"cold_iterations_mean\": %.2f,\n", cold_mean)
       << util::strfmt("  \"warm_iterations_mean\": %.2f,\n", warm_mean)
       << util::strfmt("  \"iteration_ratio\": %.2f,\n", ratio)
       << util::strfmt("  \"cold_wall_ms\": %.2f,\n", cold_ms)
       << util::strfmt("  \"warm_wall_ms\": %.2f,\n", warm_ms)
       << "  \"days\": [\n";
  for (std::size_t i = 0; i < days.size(); ++i) {
    const auto& day = days[i];
    json << util::strfmt(
        "    {\"day\": \"%s\", \"intervals\": %zu, \"screen_iters\": %.2f, "
        "\"cold_iters\": %.2f, \"warm_iters\": %.2f, \"ratio\": %.2f, "
        "\"cold_ms\": %.2f, \"warm_ms\": %.2f}%s\n",
        day.name.c_str(), day.intervals, day.screen_iters, day.cold_iters,
        day.warm_iters, day.ratio(), day.cold_ms, day.warm_ms,
        i + 1 < days.size() ? "," : "");
  }
  json << "  ]\n}\n";
  persist::atomic_write_file("BENCH_qp.json", json.str());
  std::cout << "\nwrote BENCH_qp.json\n";
  return pass ? 0 : 1;
}
