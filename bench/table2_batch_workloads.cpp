// Table II: the four batch workload traces and their average CPU
// utilizations (offered load on the source machine each log came from).
#include "common.hpp"

#include "smoother/power/datacenter.hpp"

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Table II",
      "batch workload traces and average CPU utilization");

  power::DatacenterSpec spec;
  spec.server_count = kServers;
  const power::DatacenterPowerModel dc(spec);
  const auto horizon = util::days(4.0);

  sim::TablePrinter table({"trace", "source_cpus", "paper_util_%",
                           "measured_util_%", "jobs", "mean_runtime_min",
                           "mean_servers"});
  for (const auto& params : trace::BatchWorkloadPresets::all()) {
    const trace::BatchWorkloadModel model(params);
    const auto jobs = model.generate(horizon, kServers, dc, kSeedBatch);
    const double measured = trace::BatchWorkloadModel::offered_utilization(
        jobs, params.source_processors, horizon);
    double runtime_sum = 0.0, servers_sum = 0.0;
    for (const auto& job : jobs) {
      runtime_sum += job.runtime.value();
      servers_sum += static_cast<double>(job.servers);
    }
    const auto n = static_cast<double>(jobs.size());
    table.add_row({params.name, std::to_string(params.source_processors),
                   util::strfmt("%.1f", 100.0 * params.target_utilization),
                   util::strfmt("%.1f", 100.0 * measured),
                   std::to_string(jobs.size()),
                   util::strfmt("%.0f", runtime_sum / n),
                   util::strfmt("%.0f", servers_sum / n)});
  }
  table.print(std::cout);
  std::cout << "\npaper values: LLNL Thunder 86.7, LANL CM5 74.4, HPC2N 60.1, "
               "Sandia Ross 49.9 (%).\n";
  return 0;
}
