// Extension: storage-portfolio ablation (the "what, where and how much"
// question of the paper's reference [25]).
//
// Same total capacity and total power in every arm; what changes is how
// they are split across devices. The multi-ESD QP routes the fast
// component to the high-rate device and the bulk shift to the deep one,
// so a fast+deep pair should beat a monolith whose single rate equals the
// *blended* rate.
#include "common.hpp"

#include "smoother/core/multi_esd.hpp"
#include "smoother/stats/descriptive.hpp"

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Extension: ESD portfolio",
      "monolithic battery vs fast+deep pair at equal capacity and power");

  const auto scenario = sim::make_web_scenario(
      trace::WebWorkloadPresets::nasa(), trace::WindSitePresets::texas_10(),
      kCapacitySmall, kWeek, kSeedWind);
  const auto base_config = sim::default_config(kCapacitySmall);
  const core::Smoother middleware(base_config);
  const core::RegionClassifier classifier =
      middleware.make_classifier(scenario.supply);

  const util::KilowattHours total_capacity{120.0};
  const util::Kilowatts total_rate{488.0};

  const std::size_t raw_switches =
      sim::dispatch(scenario.supply, scenario.demand,
                    sim::DispatchPolicy::kDirect)
          .switching_times;

  sim::TablePrinter table({"arm", "w_fs_switches", "var_reduction_%",
                           "fast_max_rate_kw", "deep_max_rate_kw",
                           "fast_throughput_kwh", "deep_throughput_kwh"});

  const auto run_bank = [&](const std::string& name, battery::EsdBank bank) {
    const core::MultiEsdSmoothing smoothing(base_config.flexible_smoothing);
    const auto result = smoothing.smooth(scenario.supply, classifier, bank);
    const std::size_t switches =
        sim::dispatch(result.supply, scenario.demand,
                      sim::DispatchPolicy::kDirect)
            .switching_times;
    const bool pair = bank.size() == 2;
    table.add_row(
        {name, std::to_string(switches),
         util::strfmt("%.0f", 100.0 * result.mean_variance_reduction),
         util::strfmt("%.0f", result.device_max_rate_kw[0]),
         pair ? util::strfmt("%.0f", result.device_max_rate_kw[1]) : "-",
         util::strfmt("%.0f", result.device_throughput_kwh[0]),
         pair ? util::strfmt("%.0f", result.device_throughput_kwh[1]) : "-"});
  };

  {
    battery::BatterySpec spec;
    spec.capacity = total_capacity;
    spec.max_charge_rate = total_rate;
    spec.max_discharge_rate = total_rate;
    spec.charge_efficiency = 1.0;
    spec.discharge_efficiency = 1.0;
    battery::EsdBank monolith;
    monolith.add("mono", battery::Battery(spec));
    run_bank("monolith (full rate)", std::move(monolith));
  }
  {
    battery::BatterySpec spec;
    spec.capacity = total_capacity;
    spec.max_charge_rate = total_rate * 0.3;  // deep-cycle chemistry rate
    spec.max_discharge_rate = total_rate * 0.3;
    spec.charge_efficiency = 1.0;
    spec.discharge_efficiency = 1.0;
    battery::EsdBank slow;
    slow.add("mono-slow", battery::Battery(spec));
    run_bank("monolith (deep-cycle rate)", std::move(slow));
  }
  run_bank("fast+deep pair (20/80 cap, 70/30 rate)",
           battery::EsdBank::fast_deep_pair(total_capacity, total_rate, 0.2,
                                            0.7));

  table.print(std::cout);
  std::cout << util::strfmt("\n(raw supply, no FS: %zu switches)\n",
                            raw_switches);
  std::cout << "reading: a full-rate monolith is the (unrealistic) upper "
               "bound; the realistic deep-cycle monolith loses smoothing "
               "headroom to its rate limit, and the fast+deep pair buys "
               "most of it back — the QP routes the high-frequency "
               "component through the small fast device, sparing the deep "
               "pack's throughput.\n";
  return 0;
}
