// Fig. 4/5: raw wind power vs the supply delivered after Flexible
// Smoothing (the W/O FS vs W/ FS curves with the Region-II-1 circle).
#include "common.hpp"

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Fig. 5", "smoothed (W/ FS) vs original (W/O FS) wind power");

  const auto raw = sim::wind_power_series(trace::WindSitePresets::texas_10(),
                                          kCapacitySmall, util::days(1.0),
                                          util::kFiveMinutes, kSeedWind + 5);
  const auto config = sim::default_config(kCapacitySmall);
  const core::Smoother middleware(config);
  double cycles = 0.0;
  const auto result = middleware.smooth_supply(raw, &cycles);

  std::cout << "minute,raw_kw,smoothed_kw,region\n";
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::size_t interval = i / 12;
    const std::string region =
        interval < result.intervals.size()
            ? core::to_string(result.intervals[interval].region)
            : "-";
    std::cout << util::strfmt("%.0f,%.1f,%.1f,%s\n", raw.time_at(i).value(),
                              raw[i], result.supply[i], region.c_str());
  }

  std::cout << util::strfmt(
      "\nwhole-day variance: raw %.0f -> smoothed %.0f (kW^2)\n",
      raw.variance(), result.supply.variance());
  std::cout << util::strfmt(
      "within smoothed intervals: mean variance reduction %.0f%% across %zu "
      "intervals; battery cycles %.1f\n",
      100.0 * result.mean_variance_reduction(), result.smoothed_intervals,
      cycles);
  std::cout << "paper shape: Region-II-1 stretches become near-flat; "
               "Region-I and Region-II-2 pass through untouched.\n";
  return 0;
}
