// Fig. 8: the Active Delay schematic, reproduced with the real scheduler.
//
// Three deferrable jobs J1-J3 against a renewable pulse that arrives after
// J2 would naively run. Without AD (Fig. 8a) J2 executes at arrival and
// misses the renewable energy; with AD (Fig. 8b) J2 is delayed to the
// window with the most renewable energy before its soft deadline.
#include "common.hpp"

#include "smoother/core/active_delay.hpp"

namespace {

using namespace smoother;

sched::Job job(std::uint64_t id, double arrival, double runtime,
               double deadline, double power) {
  sched::Job j;
  j.id = id;
  j.arrival = util::Minutes{arrival};
  j.runtime = util::Minutes{runtime};
  j.deadline = util::Minutes{deadline};
  j.servers = 1;
  j.power = util::Kilowatts{power};
  return j;
}

void print_schedule(const char* title, const sched::ScheduleResult& result,
                    const sched::ScheduleRequest& request) {
  std::cout << title << '\n';
  sim::TablePrinter table({"job", "arrival_min", "start_min", "finish_min",
                           "renewable_kwh", "met_deadline"});
  for (const auto& placement : result.outcome.placements) {
    const auto& j = *std::find_if(
        request.jobs.begin(), request.jobs.end(),
        [&](const sched::Job& candidate) {
          return candidate.id == placement.job_id;
        });
    table.add_row({util::strfmt("J%llu",
                                static_cast<unsigned long long>(
                                    placement.job_id)),
                   util::strfmt("%.0f", j.arrival.value()),
                   util::strfmt("%.0f", placement.start.value()),
                   util::strfmt("%.0f", placement.finish.value()),
                   util::strfmt("%.2f",
                                placement.renewable_energy_used.value()),
                   placement.met_deadline ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << util::strfmt("renewable used in total: %.2f kWh of %.2f "
                            "generated (utilization %.2f)\n\n",
                            result.outcome.renewable_energy_used.value(),
                            request.renewable.total_energy().value(),
                            result.outcome.renewable_energy_used.value() /
                                request.renewable.total_energy().value());
}

}  // namespace

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  sim::print_experiment_header(
      std::cout, "Fig. 8", "Active Delay schematic with the real scheduler");

  // Renewable: a pulse from minute 120 to 200 (the dotted curve's bump).
  std::vector<double> values(360, 2.0);
  for (std::size_t t = 120; t < 200; ++t) values[t] = 30.0;
  sched::ScheduleRequest request;
  request.renewable = util::TimeSeries(util::kOneMinute, std::move(values));
  request.total_servers = 4;
  request.jobs = {
      job(1, 0.0, 60.0, 80.0, 20.0),      // J1: tight deadline, runs now
      job(2, 40.0, 60.0, 300.0, 25.0),    // J2: slack -> AD delays it
      job(3, 210.0, 60.0, 359.0, 18.0),   // J3: arrives after the pulse
  };

  const auto immediate = sched::ImmediateScheduler().schedule(request);
  print_schedule("(a) without Active Delay — jobs run at arrival:", immediate,
                 request);
  const auto delayed = core::ActiveDelayScheduler().schedule(request);
  print_schedule("(b) with Active Delay — J2 moves into the renewable pulse:",
                 delayed, request);

  std::cout << "paper shape: J2's execution shifts to the time with the "
               "most renewable energy before its soft deadline (red dotted "
               "line); J1 (no slack) and J3 (arrives late) are unchanged.\n";
  return 0;
}
