// Fig. 13: switching times W/ Comp vs W/ FS, Table I web workloads
// (installed wind capacity 1525 kW).
#include "common.hpp"

#include <algorithm>

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Fig. 13",
      "switching times W/ Comp vs W/ FS, Table I web workloads @ 1525 kW");
  run_web_switching_sweep(kCapacityLarge);
  return 0;
}
