// Reproduction self-check: asserts the paper's headline *shape* claims on
// the canonical scenarios and exits non-zero if any fails. This is the
// one binary to run after touching anything — CI for the science, not
// just the code.
//
// Claims checked (paper Section IV):
//   1. FS cuts energy switching times vs raw supply on high-volatility
//      wind (Figs. 10-14).
//   2. FS beats the Comp battery baseline there too (Figs. 11-14).
//   3. FS helps more on high- than on low-volatility traces (Figs. 12/14).
//   4. AD raises renewable utilization on every Table II workload under
//      both supply levels (Fig. 17).
//   5. FS on top of AD cuts switching times by more than 25 % on average
//      (Fig. 18).
//   6. The Fig. 6 trade-off: a higher Region-II-2 CDF level never
//      increases switching, and the required battery rate never shrinks.
#include "common.hpp"

namespace {

int failures = 0;

void check(bool ok, const std::string& what) {
  std::cout << (ok ? "  [PASS] " : "  [FAIL] ") << what << '\n';
  if (!ok) ++failures;
}

}  // namespace

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "repro check",
      "headline shape claims of the paper, asserted");

  const auto config = sim::default_config(kCapacitySmall);

  // --- claims 1-3: switching times ------------------------------------------
  {
    const auto high = sim::make_web_scenario(
        trace::WebWorkloadPresets::nasa(), trace::WindSitePresets::texas_10(),
        kCapacitySmall, kWeek, kSeedWeb);
    const auto cmp_high =
        sim::run_switching_comparison(high.supply, high.demand, config);
    check(cmp_high.with_fs < cmp_high.without_fs,
          "FS reduces switching vs raw supply (high-volatility wind)");
    check(cmp_high.with_fs < cmp_high.with_comp,
          "FS beats the Comp battery baseline");

    const auto low = sim::make_web_scenario(
        trace::WebWorkloadPresets::nasa(),
        trace::WindSitePresets::california_9122(), kCapacitySmall, kWeek,
        kSeedWeb);
    const auto cmp_low =
        sim::run_switching_comparison(low.supply, low.demand, config);
    const double gain_high =
        1.0 - static_cast<double>(cmp_high.with_fs) /
                  static_cast<double>(cmp_high.without_fs);
    const double gain_low =
        cmp_low.without_fs > 0
            ? 1.0 - static_cast<double>(cmp_low.with_fs) /
                        static_cast<double>(cmp_low.without_fs)
            : 0.0;
    check(gain_high > gain_low,
          "FS helps more on high- than low-volatility wind");
  }

  // --- claim 4: AD utilization ------------------------------------------------
  {
    bool all_improve = true;
    for (const auto& batch : trace::BatchWorkloadPresets::all()) {
      for (double ratio : {0.5, 1.5}) {
        const auto scenario = sim::make_batch_scenario(
            batch, trace::WindSitePresets::colorado_11005(), ratio,
            util::days(3.0), kServers, kSeedBatch);
        const auto cmp = sim::run_utilization_comparison(
            scenario,
            sim::default_config(util::Kilowatts{scenario.supply.max()}));
        if (cmp.with_ad <= cmp.without_ad) all_improve = false;
      }
    }
    check(all_improve,
          "AD raises renewable utilization on every workload x supply arm");
  }

  // --- claim 5: FS + AD > 25 % ------------------------------------------------
  {
    double reduction_sum = 0.0;
    std::size_t arms = 0;
    for (const auto& batch : trace::BatchWorkloadPresets::all()) {
      const auto scenario = sim::make_batch_scenario(
          batch, trace::WindSitePresets::texas_10(), 1.0, util::days(3.0),
          kServers, kSeedBatch + arms);
      const auto cmp = sim::run_combined_comparison(
          scenario,
          sim::default_config(util::Kilowatts{scenario.supply.max()}));
      reduction_sum += cmp.reduction_percent();
      ++arms;
    }
    check(reduction_sum / static_cast<double>(arms) > 25.0,
          "FS on top of AD cuts switching by more than 25% on average");
  }

  // --- claim 6: Fig. 6 monotonicity --------------------------------------------
  {
    const auto scenario = sim::make_web_scenario(
        trace::WebWorkloadPresets::nasa(), trace::WindSitePresets::texas_10(),
        kCapacitySmall, kWeek, kSeedWind);
    std::size_t prev_switches = SIZE_MAX;
    double prev_rate = 0.0;
    bool monotone = true;
    for (double level : {0.85, 0.95, 0.995}) {
      auto sweep_config = sim::default_config(kCapacitySmall);
      sweep_config.extreme_cdf = level;
      sweep_config.battery = battery::spec_for_max_rate(
          kCapacitySmall, util::kFiveMinutes, 2.0);
      sweep_config.battery.charge_efficiency = 1.0;
      sweep_config.battery.discharge_efficiency = 1.0;
      const core::Smoother middleware(sweep_config);
      const auto smoothing = middleware.smooth_supply(scenario.supply);
      const std::size_t switches =
          sim::dispatch(smoothing.supply, scenario.demand,
                        sim::DispatchPolicy::kDirect)
              .switching_times;
      if (switches > prev_switches ||
          smoothing.required_max_rate_kw + 1e-9 < prev_rate)
        monotone = false;
      prev_switches = switches;
      prev_rate = smoothing.required_max_rate_kw;
    }
    check(monotone,
          "Fig. 6 trade-off: higher CDF level -> fewer switches, larger "
          "required battery rate");
  }

  std::cout << (failures == 0 ? "\nALL HEADLINE CLAIMS REPRODUCED\n"
                              : "\nSOME CLAIMS FAILED\n");
  return failures == 0 ? 0 : 1;
}
