// Extension: grid-frequency stress of each supply arm.
//
// The paper's stability motivation, quantified with a swing-equation
// microgrid model: the frequency response to each arm's fluctuating
// component (supply minus its rolling hourly mean). Reported per arm:
// maximum frequency deviation, maximum ROCOF, and the time spent outside
// a +-0.2 Hz band.
#include "common.hpp"

#include "smoother/sim/frequency.hpp"
#include "smoother/stats/rolling.hpp"

namespace {

using namespace smoother;

sim::FrequencyStats fluctuation_response(const sim::GridFrequencyModel& grid,
                                         const util::TimeSeries& series) {
  const auto trend = stats::moving_average(series.values(), 13);
  const util::TimeSeries baseline(
      series.step(), std::vector<double>(trend.begin(), trend.end()));
  return grid.simulate(series, baseline, /*band_hz=*/0.1);
}

}  // namespace

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Extension: grid frequency",
      "swing-equation stress of raw / Comp / FS supplies (ROCOF claim)");

  const auto scenario = sim::make_web_scenario(
      trace::WebWorkloadPresets::nasa(), trace::WindSitePresets::texas_10(),
      kCapacitySmall, util::days(3.0), kSeedWind);
  const auto config = sim::default_config(kCapacitySmall);

  battery::Battery comp_battery(config.battery);
  const auto comp = sim::dispatch(scenario.supply, scenario.demand,
                                  sim::DispatchPolicy::kComp, &comp_battery);
  const core::Smoother middleware(config);
  const auto smoothing = middleware.smooth_supply(scenario.supply);
  core::SmootherConfig mpc_config = config;
  mpc_config.flexible_smoothing.lookahead_intervals = 3;
  const auto mpc_smoothing =
      core::Smoother(mpc_config).smooth_supply(scenario.supply);

  // The wind farm is ~10 % of the microgrid's base (a realistic
  // penetration); the swing dynamics see its fluctuation against that base.
  sim::GridModelParams grid_params;
  grid_params.base_power_kw = 10.0 * kCapacitySmall.value();
  const sim::GridFrequencyModel grid(grid_params);

  sim::TablePrinter table({"arm", "max_deviation_hz", "max_rocof_hz_per_s",
                           "seconds_outside_0.1hz"});
  const auto row = [&](const std::string& name,
                       const util::TimeSeries& supply) {
    const auto stats = fluctuation_response(grid, supply);
    table.add_row({name, util::strfmt("%.3f", stats.max_deviation_hz),
                   util::strfmt("%.3f", stats.max_rocof_hz_per_s),
                   util::strfmt("%.0f", stats.seconds_outside_band)});
  };
  row("raw wind (W/O FS)", scenario.supply);
  row("W/ Comp (burst)", comp.effective_supply);
  row("W/ FS (per-hour, paper)", smoothing.supply);
  row("W/ FS (lookahead 3)", mpc_smoothing.supply);
  table.print(std::cout);

  std::cout << "\nreading: the paper argues fluctuating renewable "
               "injection raises the maximum ROCOF. Time outside the band "
               "and typical deviations drop with FS, but the per-hour "
               "planner's *worst-case* ROCOF is set by its hour-boundary "
               "level steps — the receding-horizon variant removes those "
               "and wins on every column, closing the loop on the paper's "
               "stability claim.\n";
  return 0;
}
