// Fig. 1: output power vs wind speed for the ENERCON E48 turbine.
//
// Regenerates the piecewise curve (cut-in 3 m/s, rated 14 m/s at 800 kW,
// cut-out 25 m/s) with the Gaussian-sum partial-load fit of Eq. 2, and
// reports the fit error against the published table.
#include "common.hpp"

#include "smoother/power/turbine.hpp"

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  sim::print_experiment_header(
      std::cout, "Fig. 1",
      "E48 output power vs wind speed (piecewise Eq. 1 + Gaussian Eq. 2)");

  const auto& e48 = power::TurbineCurve::enercon_e48();
  std::cout << "speed_mps,power_kw\n";
  for (double v = 0.0; v <= 30.0 + 1e-9; v += 0.5) {
    std::cout << util::strfmt(
        "%.1f,%.1f\n", v,
        e48.output(util::MetresPerSecond{v}).value());
  }

  std::cout << "\n# Gaussian fit vs published E48 table:\n";
  sim::TablePrinter table({"speed_mps", "published_kw", "fitted_kw",
                           "abs_err_kw"});
  double worst = 0.0;
  for (const auto& [speed, published] :
       power::TurbineCurve::e48_reference_points()) {
    const double fitted = e48.partial_load()(speed);
    worst = std::max(worst, std::abs(fitted - published));
    table.add_row(std::vector<double>{speed, published, fitted,
                                      std::abs(fitted - published)});
  }
  table.print(std::cout);
  std::cout << util::strfmt(
      "\nworst-case fit error: %.1f kW (%.2f%% of rated)\n", worst,
      100.0 * worst / e48.spec().rated_power.value());
  std::cout << "paper shape: zero below 3 m/s, S-curve 3-14 m/s, plateau at "
               "800 kW to 25 m/s, shutdown above.\n";
  return 0;
}
