// Extension: electricity-cost comparison of the paper's arms.
//
// The paper motivates Smoother with electricity bills but reports no cost
// numbers; this bench prices each arm (raw / Comp burst / Comp matching /
// FS / FS+AD) under a time-of-use tariff with a demand charge and
// battery-wear amortization. AD shifts grid draw off the peak window as a
// side effect of chasing renewable supply, so FS+AD should win on total
// cost, not just on the paper's stability/utilization metrics.
#include "common.hpp"

#include "smoother/battery/wear.hpp"
#include "smoother/sim/cost.hpp"

namespace {

using namespace smoother;

struct Arm {
  std::string name;
  util::TimeSeries grid;
  double battery_life = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Extension: cost",
      "weekly electricity cost of each arm (TOU + demand charge + wear)");

  const auto scenario = sim::make_batch_scenario(
      trace::BatchWorkloadPresets::hpc2n(), trace::WindSitePresets::texas_10(),
      1.0, kWeek, kServers, kSeedBatch);
  const auto config =
      sim::default_config(util::Kilowatts{scenario.supply.max()});
  const sim::CostModel cost_model;

  std::vector<Arm> arms;

  // Helper: grid power for a run report on the 1-minute grid.
  const auto grid_of = [](const core::RunReport& report) {
    const auto supply = report.smoothing.supply.resample(util::kOneMinute);
    util::TimeSeries grid(supply.step(), supply.size());
    for (std::size_t i = 0; i < supply.size(); ++i)
      grid[i] = std::max(report.schedule.demand[i] - supply[i], 0.0);
    return grid;
  };
  // Battery life burned, via the wear model on a SoC proxy: equivalent
  // cycles at the battery's mean depth ~ cycles * full-depth cost.
  const auto life_of = [&](double cycles) {
    battery::WearTracker wear;
    // Approximate: each equivalent full cycle swings the usable window.
    wear.record_soc(0.1);
    for (int c = 0; c < static_cast<int>(cycles + 0.5); ++c) {
      wear.record_soc(1.0);
      wear.record_soc(0.1);
    }
    return wear.life_consumed();
  };

  {
    core::SmootherConfig off = config;
    off.enable_flexible_smoothing = false;
    off.enable_active_delay = false;
    const auto report = core::Smoother(off).run(
        scenario.supply, scenario.jobs, scenario.total_servers);
    arms.push_back({"raw (no FS, no AD)", grid_of(report), 0.0});
  }
  {
    core::SmootherConfig fs_only = config;
    fs_only.enable_active_delay = false;
    const auto report = core::Smoother(fs_only).run(
        scenario.supply, scenario.jobs, scenario.total_servers);
    arms.push_back({"W/ FS only", grid_of(report),
                    life_of(report.battery_equivalent_cycles)});
  }
  {
    core::SmootherConfig ad_only = config;
    ad_only.enable_flexible_smoothing = false;
    const auto report = core::Smoother(ad_only).run(
        scenario.supply, scenario.jobs, scenario.total_servers);
    arms.push_back({"W/ AD only", grid_of(report), 0.0});
  }
  {
    const auto report = core::Smoother(config).run(
        scenario.supply, scenario.jobs, scenario.total_servers);
    arms.push_back({"W/ FS and W/ AD", grid_of(report),
                    life_of(report.battery_equivalent_cycles)});
  }
  {
    // Price-aware AD extension: grid-bound work drifts off-peak.
    core::SmootherConfig priced = config;
    priced.active_delay.offpeak_weight = 0.25;
    const auto report = core::Smoother(priced).run(
        scenario.supply, scenario.jobs, scenario.total_servers);
    arms.push_back({"W/ FS + price-aware AD", grid_of(report),
                    life_of(report.battery_equivalent_cycles)});
  }

  sim::TablePrinter table({"arm", "grid_kwh", "energy_cost_$",
                           "demand_charge_$", "wear_cost_$", "total_$"});
  for (const auto& arm : arms) {
    const auto breakdown = cost_model.price(arm.grid, arm.battery_life,
                                            config.battery.capacity);
    table.add_row({arm.name,
                   util::strfmt("%.0f", arm.grid.total_energy().value()),
                   util::strfmt("%.2f", breakdown.grid_energy_cost),
                   util::strfmt("%.2f", breakdown.demand_charge),
                   util::strfmt("%.2f", breakdown.battery_wear_cost),
                   util::strfmt("%.2f", breakdown.total())});
  }
  table.print(std::cout);
  std::cout
      << "\nreading: AD cuts the energy bill outright (half the grid "
         "energy); FS adds a small wear cost but trims nothing else -- its "
         "value is stability (switching), which this tariff does not "
         "price. The price-aware AD arm is a cautionary ablation: it "
         "minimizes the *energy* charge as designed, but by piling "
         "deferred jobs into the off-peak window it concentrates grid "
         "draw and the demand charge explodes. A deployment pairing "
         "price-aware deferral with a demand-charge tariff must also cap "
         "concurrent grid draw (peak-shaving, cf. EBuff [37]) -- left as "
         "configured policy, not default behaviour.\n";
  return 0;
}
