// Macro: crash-recovery of the persistence engine under the dsim pipeline.
//
// Gates the properties smoother::persist exists for (exit code 1 on
// violation):
//
//   * a fuzzed crash sweep — >= 50 kill points over a simulated month,
//     including torn-write cases that truncate the WAL at a random byte
//     offset — where every case recovers from disk, resumes, and
//     reproduces the uninterrupted reference run's remaining intervals
//     byte for byte with zero invariant violations;
//   * WAL appends are cheap: a simulated quarter with one checkpoint per
//     committed interval stays within 5 % of the run without an engine
//     (interleaved min-of-9 wall times; the quarter keeps timer noise well
//     inside the budget), and its output is byte-identical;
//   * recovery time scales with WAL length: a rung ladder of WAL prefixes
//     (cut at record boundaries from the quarter's full log) each recovers
//     with the expected replay count, the full log in well under a second.
//
// --seed reseeds the whole campaign; the default keeps the checked-in
// output reproducible. Emits BENCH_recovery.json for the robustness
// trajectory (tools/check_metrics_json.py --recovery validates the schema).
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common.hpp"
#include "smoother/dsim/crash_nemesis.hpp"
#include "smoother/dsim/pipeline_sim.hpp"
#include "smoother/persist/engine.hpp"

namespace {

using namespace smoother;
using namespace smoother::bench;
namespace fs = std::filesystem;

constexpr std::size_t kCrashPoints = 50;
constexpr double kTornFraction = 0.3;
constexpr double kOverheadBudget = 0.05;
constexpr std::size_t kOverheadReps = 9;  // min-of-9 tames scheduler noise
constexpr double kFullRecoveryBudgetSeconds = 1.0;
/// wal.bin layout constants (see persist/engine.hpp): file header is magic
/// + u32 version; each record is [u32 len][u32 crc][u64 seq][payload].
constexpr std::size_t kWalHeaderBytes = 8;
constexpr std::size_t kRecordHeaderBytes = 16;

/// The month pipeline under test. Warm starts are off because their
/// iterates are deliberately not checkpointed (DESIGN.md §4i): a recovered
/// run cold-starts the solver, so byte-identity to an uninterrupted
/// reference is only promised for cold-started pipelines.
dsim::PipelineSimConfig month_config() {
  dsim::PipelineSimConfig config;
  config.duration = kMonth;
  config.record_trace = false;
  config.solver_warm_start = false;
  return config;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Byte offset of the end of the first `records` WAL records (record
/// boundaries only; asserts the file holds at least that many).
std::size_t wal_prefix_end(const std::string& bytes, std::size_t records) {
  std::size_t offset = kWalHeaderBytes;
  for (std::size_t i = 0; i < records; ++i) {
    persist::Reader head(
        std::string_view(bytes).substr(offset, sizeof(std::uint32_t)));
    offset += kRecordHeaderBytes + head.u32();
  }
  return offset;
}

/// Scratch directory for WAL/snapshot state, preferring a memory-backed
/// filesystem: the overhead gate measures the middleware's append path, and
/// a build directory on a slow or shared disk would fold that disk's
/// writeback jitter into a 5 % wall-time budget.
fs::path scratch_root() {
  const std::string name =
      "macro_recovery_state." + std::to_string(::getpid());
  for (const fs::path& base :
       {fs::path("/dev/shm"), fs::temp_directory_path(), fs::path(".")}) {
    std::error_code ec;
    const fs::path candidate = base / name;
    if (fs::create_directories(candidate, ec) || fs::is_directory(candidate))
      return candidate;
  }
  return name;  // unreachable: "." always succeeds
}

struct LadderRung {
  std::size_t wal_records = 0;
  std::uintmax_t wal_bytes = 0;
  double recover_us = 0.0;
  std::size_t replayed = 0;
};

}  // namespace

int main(int argc, char** argv) {
  smoother::bench::Harness harness(argc, argv);
  const std::uint64_t seed = harness.seed_or(kSeedWind);
  sim::print_experiment_header(
      std::cout, "macro: crash recovery",
      "fuzzed kill points and torn WAL writes over a simulated month: "
      "byte-identical resume, append overhead, recovery-time ladder");

  const fs::path scratch = scratch_root();
  fs::remove_all(scratch);

  // --- Phase 1: fuzzed crash sweep (incl. torn writes) ---------------------
  dsim::CrashNemesisConfig nemesis_config;
  nemesis_config.pipeline = month_config();
  nemesis_config.crash_points = kCrashPoints;
  nemesis_config.torn_write_fraction = kTornFraction;
  nemesis_config.persist.directory = (scratch / "crash_sweep").string();
  dsim::CrashNemesis nemesis(nemesis_config, seed);
  const dsim::CrashNemesisReport sweep = nemesis.run();

  sim::TablePrinter sweep_table({"points", "recovered", "cold_starts", "torn",
                                 "identical", "clean", "ref_intervals"});
  sweep_table.add_row({std::to_string(sweep.points),
                       std::to_string(sweep.recovered),
                       std::to_string(sweep.cold_starts),
                       std::to_string(sweep.torn),
                       std::to_string(sweep.identical),
                       std::to_string(sweep.clean),
                       std::to_string(sweep.reference_intervals)});
  sweep_table.print(std::cout);
  const bool sweep_ok = sweep.ok() && sweep.torn > 0 && sweep.recovered > 0;
  if (!sweep.ok())
    std::cout << "first failure: " << sweep.first_failure << "\n";

  // --- Phase 2: WAL append overhead ----------------------------------------
  // Measured over a quarter, not the sweep's month: the overhead budget is a
  // ratio of wall times, and the longer run keeps scheduler/timer noise an
  // order of magnitude below the 5 % budget.
  dsim::PipelineSimConfig pipeline = month_config();
  pipeline.duration = util::days(90.0);
  double baseline_seconds = 1e300;
  double persist_seconds = 1e300;
  double baseline_checksum = 0.0;
  double persist_checksum = 0.0;
  std::uintmax_t wal_bytes = 0;
  std::size_t wal_records = 0;
  // Reps interleave the two arms so clock-speed and cache drift across the
  // campaign biases neither min.
  for (std::size_t rep = 0; rep < kOverheadReps; ++rep) {
    {
      dsim::PipelineSim plain(pipeline, seed);
      const auto start = std::chrono::steady_clock::now();
      const dsim::PipelineSimResult result = plain.run();
      baseline_seconds = std::min(baseline_seconds, seconds_since(start));
      baseline_checksum = result.output_checksum;
    }
    persist::PersistConfig engine_config;
    engine_config.directory =
        (scratch / ("overhead-" + std::to_string(rep))).string();
    engine_config.snapshot_every_records = 0;  // pure append cost
    persist::PersistEngine engine(engine_config);
    dsim::SimControls controls;
    controls.engine = &engine;
    dsim::PipelineSim with_engine(pipeline, seed);
    const auto start = std::chrono::steady_clock::now();
    const dsim::PipelineSimResult result =
        with_engine.run(with_engine.clean_tape(), controls);
    persist_seconds = std::min(persist_seconds, seconds_since(start));
    persist_checksum = result.output_checksum;
    wal_records = engine.wal_records();
  }
  // Sized after the loop: the engines are closed by then, so the buffered
  // WAL tail has reached the file.
  wal_bytes = fs::file_size(scratch / "overhead-0" / "wal.bin");
  const double overhead =
      persist_seconds / std::max(baseline_seconds, 1e-12) - 1.0;
  const bool output_identical = baseline_checksum == persist_checksum;
  const bool overhead_ok = overhead < kOverheadBudget && output_identical;

  sim::TablePrinter overhead_table({"baseline_s", "persist_s", "overhead_%",
                                    "wal_records", "wal_bytes",
                                    "output_identical"});
  overhead_table.add_row({util::strfmt("%.3f", baseline_seconds),
                          util::strfmt("%.3f", persist_seconds),
                          util::strfmt("%.2f", overhead * 100.0),
                          std::to_string(wal_records),
                          std::to_string(wal_bytes),
                          output_identical ? "yes" : "NO"});
  std::cout << "\n";
  overhead_table.print(std::cout);

  // --- Phase 3: recovery-time ladder over WAL prefixes ---------------------
  // The month's full WAL (written without compaction in phase 2) is cut at
  // record boundaries into prefixes of increasing length; each rung's
  // recover() must replay exactly that many records.
  std::string full_wal;
  {
    std::ifstream in((scratch / "overhead-0" / "wal.bin").string(),
                     std::ios::binary);
    full_wal.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  std::vector<std::size_t> rungs;
  for (std::size_t r = 45; r < wal_records; r *= 2) rungs.push_back(r);
  rungs.push_back(wal_records);

  bool ladder_ok = true;
  std::vector<LadderRung> ladder;
  sim::TablePrinter ladder_table(
      {"wal_records", "wal_bytes", "recover_us", "replayed"});
  for (const std::size_t records : rungs) {
    const fs::path dir = scratch / ("ladder-" + std::to_string(records));
    fs::create_directories(dir);
    const std::string prefix =
        full_wal.substr(0, wal_prefix_end(full_wal, records));
    {
      std::ofstream out((dir / "wal.bin").string(), std::ios::binary);
      out.write(prefix.data(),
                static_cast<std::streamsize>(prefix.size()));
    }
    persist::PersistConfig engine_config;
    engine_config.directory = dir.string();
    persist::PersistEngine engine(engine_config);
    const auto start = std::chrono::steady_clock::now();
    const persist::RecoveredState recovered = engine.recover();
    LadderRung rung;
    rung.wal_records = records;
    rung.wal_bytes = prefix.size();
    rung.recover_us = seconds_since(start) * 1e6;
    rung.replayed = recovered.wal_records_replayed;
    ladder_ok = ladder_ok && recovered.found && rung.replayed == records;
    if (records == wal_records)
      ladder_ok = ladder_ok &&
                  rung.recover_us < kFullRecoveryBudgetSeconds * 1e6;
    ladder.push_back(rung);
    ladder_table.add_row({std::to_string(rung.wal_records),
                          std::to_string(rung.wal_bytes),
                          util::strfmt("%.1f", rung.recover_us),
                          std::to_string(rung.replayed)});
  }
  std::cout << "\n";
  ladder_table.print(std::cout);

  const bool ok = sweep_ok && overhead_ok && ladder_ok;
  std::cout << "\ninvariants: crash sweep byte-identical: "
            << (sweep_ok ? "yes" : "NO") << "; append overhead < "
            << util::strfmt("%.0f%%", kOverheadBudget * 100.0) << ": "
            << (overhead_ok ? "yes" : "NO")
            << "; recovery ladder exact: " << (ladder_ok ? "yes" : "NO")
            << "\n";

  // --- BENCH_recovery.json -------------------------------------------------
  std::ostringstream json;
  json << "{\n  \"bench\": \"macro_recovery\",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"crash_sweep\": {\n"
       << "    \"points\": " << sweep.points << ",\n"
       << "    \"recovered\": " << sweep.recovered << ",\n"
       << "    \"cold_starts\": " << sweep.cold_starts << ",\n"
       << "    \"torn\": " << sweep.torn << ",\n"
       << "    \"identical\": " << sweep.identical << ",\n"
       << "    \"clean\": " << sweep.clean << ",\n"
       << "    \"reference_intervals\": " << sweep.reference_intervals
       << ",\n"
       << "    \"first_failure\": \"" << sweep.first_failure << "\"\n"
       << "  },\n"
       << "  \"overhead\": {\n"
       << util::strfmt("    \"baseline_seconds\": %.6f,\n", baseline_seconds)
       << util::strfmt("    \"persist_seconds\": %.6f,\n", persist_seconds)
       << util::strfmt("    \"overhead_fraction\": %.6f,\n", overhead)
       << "    \"wal_records\": " << wal_records << ",\n"
       << "    \"wal_bytes\": " << wal_bytes << ",\n"
       << "    \"output_identical\": "
       << (output_identical ? "true" : "false") << "\n  },\n"
       << "  \"recovery_ladder\": [\n";
  for (std::size_t i = 0; i < ladder.size(); ++i)
    json << util::strfmt(
        "    {\"wal_records\": %zu, \"wal_bytes\": %zu, \"recover_us\": "
        "%.1f, \"replayed\": %zu}%s\n",
        ladder[i].wal_records,
        static_cast<std::size_t>(ladder[i].wal_bytes), ladder[i].recover_us,
        ladder[i].replayed, i + 1 < ladder.size() ? "," : "");
  json << "  ],\n"
       << "  \"ok\": " << (ok ? "true" : "false") << "\n}\n";
  persist::atomic_write_file("BENCH_recovery.json", json.str());

  fs::remove_all(scratch);
  std::cout << "wrote BENCH_recovery.json"
            << (ok ? "; all recovery invariants hold.\n"
                   : "; INVARIANT VIOLATION — see flags above.\n");
  return ok ? 0 : 1;
}
