// Shared setup for the figure/table bench binaries.
//
// Every binary regenerates one table or figure of the paper's evaluation
// section; they share the experiment constants here so the figures stay
// mutually consistent (same farm capacities, same week, same seeds).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "harness.hpp"
#include "smoother/core/smoother.hpp"
#include "smoother/runtime/sweep_runner.hpp"
#include "smoother/sim/dispatch.hpp"
#include "smoother/sim/experiments.hpp"
#include "smoother/sim/report.hpp"
#include "smoother/sim/scenario.hpp"
#include "smoother/trace/batch_workload.hpp"
#include "smoother/trace/google_cluster.hpp"
#include "smoother/trace/web_workload.hpp"
#include "smoother/trace/wind_speed_model.hpp"
#include "smoother/util/args.hpp"
#include "smoother/util/format.hpp"

namespace smoother::bench {

/// The paper's two installed wind capacities (Figs. 11-14).
inline constexpr util::Kilowatts kCapacitySmall{976.0};
inline constexpr util::Kilowatts kCapacityLarge{1525.0};

/// Evaluation windows.
inline const util::Minutes kWeek = util::days(7.0);
inline const util::Minutes kMonth = util::days(30.0);

/// Fixed seeds: the bench output is bit-reproducible run to run.
inline constexpr std::uint64_t kSeedWind = 20110501;   // "May 2011"
inline constexpr std::uint64_t kSeedWeb = 19950828;    // ITA log era
inline constexpr std::uint64_t kSeedBatch = 20050209;  // archive log era

/// The paper's evaluation cluster.
inline constexpr std::size_t kServers = 11000;

/// Figs. 11/13: switching times W/ Comp vs W/ FS across the five Table I
/// web workloads, on high-volatility wind at the given installed capacity.
inline void run_web_switching_sweep(util::Kilowatts capacity,
                                    std::ostream& out = std::cout) {
  const auto config = sim::default_config(capacity);
  sim::TablePrinter table({"workload", "w_comp_switches", "w_fs_switches",
                           "fs_vs_comp_%", "raw_switches"});
  double total_comp = 0.0, total_fs = 0.0;
  for (const auto& web : trace::WebWorkloadPresets::all()) {
    const auto scenario = sim::make_web_scenario(
        web, trace::WindSitePresets::texas_10(), capacity, kWeek, kSeedWeb);
    const auto cmp = sim::run_switching_comparison(scenario.supply,
                                                   scenario.demand, config);
    total_comp += static_cast<double>(cmp.with_comp);
    total_fs += static_cast<double>(cmp.with_fs);
    table.add_row(
        {web.name, std::to_string(cmp.with_comp), std::to_string(cmp.with_fs),
         util::strfmt("%+.0f", 100.0 * (static_cast<double>(cmp.with_fs) -
                                        static_cast<double>(cmp.with_comp)) /
                                   static_cast<double>(cmp.with_comp)),
         std::to_string(cmp.without_fs)});
  }
  table.print(out);
  out << util::strfmt(
      "\nmean switching reduction of FS vs Comp: %.0f%%\n",
      100.0 * (total_comp - total_fs) / total_comp);
  out << "paper shape: W/ FS below W/ Comp for every workload.\n";
}

/// Figs. 12/14: switching times W/ Comp vs W/ FS across the six Table III
/// wind traces, against the NASA web workload.
inline void run_wind_switching_sweep(util::Kilowatts capacity,
                                     std::ostream& out = std::cout) {
  const auto config = sim::default_config(capacity);
  sim::TablePrinter table({"wind_trace", "group", "w_comp_switches",
                           "w_fs_switches", "fs_vs_comp_%"});
  double low_gain = 0.0, high_gain = 0.0;
  const auto low_group = trace::WindSitePresets::low_volatility_group();
  for (const auto& site : trace::WindSitePresets::all()) {
    const bool is_low =
        std::any_of(low_group.begin(), low_group.end(),
                    [&](const auto& s) { return s.name == site.name; });
    const auto scenario = sim::make_web_scenario(
        trace::WebWorkloadPresets::nasa(), site, capacity, kWeek, kSeedWeb);
    const auto cmp = sim::run_switching_comparison(scenario.supply,
                                                   scenario.demand, config);
    const double gain =
        cmp.with_comp > 0
            ? 100.0 * (static_cast<double>(cmp.with_comp) -
                       static_cast<double>(cmp.with_fs)) /
                  static_cast<double>(cmp.with_comp)
            : 0.0;
    (is_low ? low_gain : high_gain) += gain / 3.0;
    table.add_row({site.name, is_low ? "low-vol" : "high-vol",
                   std::to_string(cmp.with_comp), std::to_string(cmp.with_fs),
                   util::strfmt("%+.0f", -gain)});
  }
  table.print(out);
  out << util::strfmt(
      "\nmean FS-vs-Comp reduction: low-volatility %.0f%%, high-volatility "
      "%.0f%%\n",
      low_gain, high_gain);
  out << "paper shape: FS helps on every trace and most on the "
         "high-volatility group.\n";
}

}  // namespace smoother::bench
