// Extension: receding-horizon (MPC-style) Flexible Smoothing.
//
// The paper plans each hour in isolation, which flattens every hour to its
// own level and leaves steps at hour boundaries. Planning over L upcoming
// intervals while executing only the first (classic model-predictive
// control) removes those steps. This bench sweeps L and reports switching
// times, typical (rms) and worst-case ramp rates, and battery activity —
// with both perfect and 7.5 %-error forecasts, since a longer horizon
// leans harder on the forecast.
#include "common.hpp"

#include "smoother/core/forecast.hpp"
#include "smoother/core/metrics.hpp"
#include "smoother/stats/descriptive.hpp"

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Extension: receding horizon",
      "FS lookahead sweep (L=1 is the paper's per-hour planner)");

  const auto scenario = sim::make_web_scenario(
      trace::WebWorkloadPresets::nasa(), trace::WindSitePresets::texas_10(),
      kCapacitySmall, kWeek, kSeedWind);

  std::cout << util::strfmt(
      "raw supply: %zu switches, rms ramp %.1f kW, max ramp %.0f kW/min\n\n",
      sim::dispatch(scenario.supply, scenario.demand,
                    sim::DispatchPolicy::kDirect)
          .switching_times,
      stats::rms_successive_diff(scenario.supply.values()),
      core::max_ramp_rate_kw_per_min(scenario.supply));

  for (const double forecast_sd : {0.0, 0.075}) {
    std::cout << util::strfmt("# forecast error sd = %.1f%%\n",
                              100.0 * forecast_sd);
    sim::TablePrinter table({"lookahead", "w_fs_switches", "rms_ramp_kw",
                             "max_ramp_kw_per_min", "battery_cycles"});
    for (std::size_t lookahead : {1u, 2u, 3u, 6u}) {
      auto config = sim::default_config(kCapacitySmall);
      config.flexible_smoothing.lookahead_intervals = lookahead;
      // A slightly wider battery makes the horizon effect visible.
      config.battery = battery::spec_for_max_rate(kCapacitySmall * 0.5,
                                                  util::kFiveMinutes, 4.0);
      config.battery.charge_efficiency = 1.0;
      config.battery.discharge_efficiency = 1.0;

      const core::Smoother middleware(config);
      const auto classifier = middleware.make_classifier(scenario.supply);
      battery::Battery battery(config.battery, config.initial_soc_fraction);
      const core::FlexibleSmoothing fs(config.flexible_smoothing);
      core::SmoothingResult smoothing;
      if (forecast_sd == 0.0) {
        smoothing = fs.smooth(scenario.supply, classifier, battery);
      } else {
        core::NoisyForecaster forecaster(forecast_sd, 0.0, kSeedWind + 3);
        smoothing = fs.smooth_with_forecast(scenario.supply, classifier,
                                            battery, forecaster);
      }
      const std::size_t switches =
          sim::dispatch(smoothing.supply, scenario.demand,
                        sim::DispatchPolicy::kDirect)
              .switching_times;
      table.add_row(
          {std::to_string(lookahead), std::to_string(switches),
           util::strfmt("%.1f",
                        stats::rms_successive_diff(smoothing.supply.values())),
           util::strfmt("%.0f",
                        core::max_ramp_rate_kw_per_min(smoothing.supply)),
           util::strfmt("%.1f", battery.equivalent_full_cycles())});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "expected shape: longer lookahead smooths the hour-boundary "
               "steps (lower rms/max ramp) at similar switching; with a "
               "noisy forecast the marginal value of a long horizon "
               "shrinks, since the tail of the plan rests on predictions.\n";
  return 0;
}
