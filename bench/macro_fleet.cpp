// Macro: the multi-tenant fleet engine at service scale.
//
// Drives fleet::FleetEngine with 10,000 tenants — each an independent
// OnlineSmoother fed its own wind-derived telemetry stream — and gates the
// properties the subsystem exists for (exit code 1 on violation):
//
//   * serial (no pool) and pooled runs at every ladder width produce the
//     same output_digest() — the sharding determinism contract, checked
//     bit for bit;
//   * factorization sharing works: fleet.batched_factorizations (KKT
//     setups across the shard solver pools) stays far below the tenant
//     count — near shards x 1 key for a same-shaped fleet;
//   * throughput and tail latency are recorded: plans/sec plus
//     p50/p99/p999 per-interval-plan latency at the 10k-tenant scale, and
//     a 1/2/4/8 thread-scaling ladder for the perf trajectory.
//
// The >= 3x-at-8-threads speedup gate is hardware-conditional: it only
// arms when the host actually has 8 hardware threads (same precedent as
// micro_runtime); otherwise the JSON records "skipped-hardware" and the
// ladder is informational. Emits BENCH_fleet.json
// (tools/check_metrics_json.py --fleet validates the schema).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "common.hpp"
#include "smoother/fleet/fleet.hpp"
#include "smoother/persist/engine.hpp"
#include "smoother/power/turbine.hpp"
#include "smoother/util/rng.hpp"

namespace {

using namespace smoother;
using namespace smoother::bench;

constexpr std::size_t kTenants = 10000;
constexpr std::size_t kIntervals = 8;  ///< completed intervals per tenant
constexpr double kSpeedupGateAt8 = 3.0;
constexpr std::size_t kSupplyStream = 20;  ///< same derivation as FleetSim

struct RunResult {
  std::uint64_t digest = 0;
  double wall_seconds = 0.0;       ///< total submit() wall time
  std::uint64_t plans = 0;
  fleet::FleetStats stats;
  std::vector<double> plan_latency_us;  ///< one entry per interval plan
};

fleet::FleetConfig fleet_config(std::uint64_t seed) {
  fleet::FleetConfig config;
  config.seed = seed;
  config.smoother.rated_power = util::Kilowatts{800.0};
  config.smoother.sample_step = util::kFiveMinutes;
  config.smoother.warmup_intervals = 1;
  config.smoother.history_intervals = 24;
  return config;
}

/// Per-tenant supply: independent wind traces of the same climate, each
/// from a split stream keyed on the tenant id (the FleetSim derivation).
std::vector<util::TimeSeries> make_supply(std::uint64_t seed,
                                          std::size_t ticks) {
  const trace::WindSpeedModel model(trace::WindSitePresets::texas_10());
  const power::TurbineCurve& curve = power::TurbineCurve::enercon_e48();
  const util::Minutes duration{util::kFiveMinutes.value() *
                               static_cast<double>(ticks)};
  const std::uint64_t stream =
      util::Rng::derive_stream_seed(seed, kSupplyStream);
  std::vector<util::TimeSeries> supply;
  supply.reserve(kTenants);
  for (std::size_t t = 0; t < kTenants; ++t)
    supply.push_back(curve.power_series(model.generate(
        duration, util::kFiveMinutes,
        util::Rng::derive_stream_seed(stream, t + 1))));
  return supply;
}

/// One full fleet run: admit every tenant, feed every tick as one batch,
/// time each submit and attribute per-plan latency on interval ticks.
RunResult run_fleet(std::uint64_t seed,
                    const std::vector<util::TimeSeries>& supply,
                    std::size_t ticks, runtime::ThreadPool* pool) {
  fleet::FleetEngine engine(fleet_config(seed), pool);
  for (std::size_t t = 0; t < kTenants; ++t)
    engine.add_tenant(static_cast<std::uint64_t>(t + 1));

  RunResult result;
  std::vector<fleet::SampleRequest> batch(kTenants);
  for (std::size_t tick = 0; tick < ticks; ++tick) {
    for (std::size_t t = 0; t < kTenants; ++t) {
      batch[t].tenant_id = static_cast<std::uint64_t>(t + 1);
      batch[t].generation_kw = supply[t][tick];
      batch[t].missing = false;
    }
    const auto start = std::chrono::steady_clock::now();
    const std::vector<fleet::IntervalEvent> events = engine.submit(batch);
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;
    result.wall_seconds += wall.count();
    if (!events.empty()) {
      const double per_plan_us =
          wall.count() * 1e6 / static_cast<double>(events.size());
      result.plan_latency_us.insert(result.plan_latency_us.end(),
                                    events.size(), per_plan_us);
    }
  }
  result.digest = engine.output_digest();
  result.stats = engine.stats();
  result.plans = result.stats.plans;
  return result;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  smoother::bench::Harness harness(argc, argv);
  const std::uint64_t seed = harness.seed_or(kSeedWind);
  sim::print_experiment_header(
      std::cout, "macro: fleet engine",
      "10k-tenant sharded service layer: determinism, factorization "
      "sharing, plans/sec and tail latency, thread-scaling ladder");

  const std::size_t points =
      fleet_config(seed).smoother.flexible_smoothing.points_per_interval;
  const std::size_t ticks = kIntervals * points;
  const auto supply = make_supply(seed, ticks);

  // --- Reference: strictly serial (no pool) --------------------------------
  const RunResult serial = run_fleet(seed, supply, ticks, nullptr);

  std::vector<double> latencies = serial.plan_latency_us;
  std::sort(latencies.begin(), latencies.end());
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);
  const double p999 = percentile(latencies, 0.999);
  const double plans_per_sec =
      static_cast<double>(serial.plans) / std::max(serial.wall_seconds, 1e-9);

  // Mean SoA batch occupancy (tenant intervals per BatchSolver chunk
  // solve): the iteration-sharing witness — at 10k same-shaped tenants per
  // 16 shards this sits near the 64-lane chunk cap.
  const double batch_occupancy =
      serial.stats.batched_solves > 0
          ? static_cast<double>(serial.stats.batched_lanes) /
                static_cast<double>(serial.stats.batched_solves)
          : 0.0;

  sim::TablePrinter fleet_table({"tenants", "shards", "plans", "plans_per_s",
                                 "p50_us", "p99_us", "p999_us",
                                 "kkt_setups", "pooled_solvers",
                                 "batch_occ"});
  fleet_table.add_row(
      {std::to_string(serial.stats.tenants),
       std::to_string(serial.stats.shards), std::to_string(serial.plans),
       util::strfmt("%.0f", plans_per_sec), util::strfmt("%.1f", p50),
       util::strfmt("%.1f", p99), util::strfmt("%.1f", p999),
       std::to_string(serial.stats.batched_factorizations),
       std::to_string(serial.stats.shared_solvers),
       util::strfmt("%.1f", batch_occupancy)});
  fleet_table.print(std::cout);

  const bool sharing_ok =
      serial.stats.batched_factorizations < serial.stats.tenants;
  // With batching on (the default config) the SoA path must have carried
  // the fleet's solves at real occupancy, not one lane at a time.
  const bool batching_ok =
      serial.stats.batched_solves > 0 && batch_occupancy > 1.0;
  const bool scale_ok = serial.stats.tenants >= kTenants &&
                        serial.plans >= kTenants * (kIntervals - 1);

  // --- Thread-scaling ladder -----------------------------------------------
  const std::vector<std::size_t> ladder = {1, 2, 4, 8};
  struct LadderPoint {
    std::size_t threads = 0;
    double wall_seconds = 0.0;
    double speedup = 1.0;
    bool digest_match = false;
  };
  std::vector<LadderPoint> scaling;
  bool deterministic = true;
  for (const std::size_t threads : ladder) {
    runtime::ThreadPool pool(threads);
    const RunResult run = run_fleet(seed, supply, ticks, &pool);
    LadderPoint point;
    point.threads = threads;
    point.wall_seconds = run.wall_seconds;
    point.digest_match = run.digest == serial.digest;
    deterministic = deterministic && point.digest_match;
    scaling.push_back(point);
  }
  for (auto& point : scaling)
    point.speedup = scaling.front().wall_seconds / point.wall_seconds;

  std::cout << "\n";
  sim::TablePrinter ladder_table(
      {"threads", "wall_s", "speedup", "digest"});
  for (const auto& point : scaling)
    ladder_table.add_row({std::to_string(point.threads),
                          util::strfmt("%.3f", point.wall_seconds),
                          util::strfmt("%.2fx", point.speedup),
                          point.digest_match ? "match" : "MISMATCH"});
  ladder_table.print(std::cout);

  // Hardware-conditional speedup gate: only arms with >= 8 real threads.
  const std::size_t hardware = runtime::resolve_thread_count(0);
  std::string speedup_gate = "skipped-hardware";
  bool speedup_ok = true;
  if (hardware >= 8) {
    speedup_ok = scaling.back().speedup >= kSpeedupGateAt8;
    speedup_gate = speedup_ok ? "pass" : "fail";
  }

  const bool ok =
      deterministic && sharing_ok && batching_ok && scale_ok && speedup_ok;
  std::cout << "\ninvariants: serial-vs-parallel byte-identical: "
            << (deterministic ? "yes" : "NO")
            << "; factorizations shared (" << serial.stats.batched_factorizations
            << " setups for " << serial.stats.tenants
            << " tenants): " << (sharing_ok ? "yes" : "NO")
            << util::strfmt("; batched solves at %.1f lanes/solve: ",
                            batch_occupancy)
            << (batching_ok ? "yes" : "NO")
            << "; >= " << kTenants << " tenants planned: "
            << (scale_ok ? "yes" : "NO") << "; 8-thread speedup gate: "
            << speedup_gate << "\n";

  // --- BENCH_fleet.json ----------------------------------------------------
  std::ostringstream json;
  json << "{\n  \"bench\": \"macro_fleet\",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"tenants\": " << serial.stats.tenants << ",\n"
       << "  \"shards\": " << serial.stats.shards << ",\n"
       << "  \"intervals\": " << kIntervals << ",\n"
       << "  \"plans\": " << serial.plans << ",\n"
       << util::strfmt("  \"plans_per_sec\": %.0f,\n", plans_per_sec)
       << "  \"latency_us\": {\n"
       << util::strfmt("    \"p50\": %.2f,\n", p50)
       << util::strfmt("    \"p99\": %.2f,\n", p99)
       << util::strfmt("    \"p999\": %.2f\n  },\n", p999)
       << "  \"batched_factorizations\": "
       << serial.stats.batched_factorizations << ",\n"
       << "  \"batched_solves\": " << serial.stats.batched_solves << ",\n"
       << "  \"batched_lanes\": " << serial.stats.batched_lanes << ",\n"
       << util::strfmt("  \"batch_occupancy\": %.2f,\n", batch_occupancy)
       << "  \"shared_solvers\": " << serial.stats.shared_solvers << ",\n"
       << "  \"arena_bytes\": " << serial.stats.arena_bytes << ",\n"
       << "  \"hardware_concurrency\": " << hardware << ",\n"
       << "  \"ladder\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i)
    json << util::strfmt(
        "    {\"threads\": %zu, \"wall_s\": %.4f, \"speedup\": %.2f}%s\n",
        scaling[i].threads, scaling[i].wall_seconds, scaling[i].speedup,
        i + 1 < scaling.size() ? "," : "");
  json << "  ],\n"
       << "  \"speedup_gate\": \"" << speedup_gate << "\",\n"
       << "  \"deterministic\": " << (deterministic ? "true" : "false")
       << ",\n  \"ok\": " << (ok ? "true" : "false") << "\n}\n";
  persist::atomic_write_file("BENCH_fleet.json", json.str());

  std::cout << "wrote BENCH_fleet.json"
            << (ok ? "; all fleet invariants hold.\n"
                   : "; INVARIANT VIOLATION — see flags above.\n");
  return ok ? 0 : 1;
}
