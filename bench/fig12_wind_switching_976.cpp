// Fig. 12: switching times W/ Comp vs W/ FS, Table III wind traces
// (installed wind capacity 976 kW).
#include "common.hpp"

#include <algorithm>

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Fig. 12",
      "switching times W/ Comp vs W/ FS, Table III wind traces @ 976 kW");
  run_wind_switching_sweep(kCapacitySmall);
  return 0;
}
