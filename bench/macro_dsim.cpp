// Macro: deterministic simulation of the online pipeline at scale.
//
// Drives smoother::dsim end to end and gates the properties the subsystem
// exists for (exit code 1 on violation):
//
//   * a full simulated *year* of 5-minute telemetry runs through the
//     complete online pipeline — buggified event loop, forecast updates,
//     fault injection, degraded-mode transitions, invariant audit — in
//     under 60 s of wall time single-threaded (virtual time is free);
//   * the year run replays byte-identically: two runs of the same seed
//     produce identical event traces and interval-record digests;
//   * zero invariant violations on the year run (SoC corridor, cell and
//     terminal energy conservation, stream integrity);
//   * the fallback rate is monotone non-decreasing in the injected fault
//     rate across a month-long sweep, and the sweep grid is byte-identical
//     serial vs parallel (--threads N);
//   * a small fuzz campaign (mutated tapes: spikes, gaps, NaN bursts,
//     reordering, clock skew, stuck windows) completes with zero crashes
//     and zero violations — any failure prints its minimal (seed,
//     mutation) reproducer.
//
// --seed reseeds the whole campaign (tape, schedule, nemesis, fuzz cases);
// the default keeps the checked-in output reproducible. Emits
// BENCH_dsim.json for the perf/robustness trajectory
// (tools/check_metrics_json.py --dsim validates the schema).
#include <chrono>
#include <sstream>

#include "common.hpp"
#include "smoother/dsim/pipeline_sim.hpp"
#include "smoother/dsim/trace_fuzz.hpp"
#include "smoother/persist/engine.hpp"

namespace {

using namespace smoother;
using namespace smoother::bench;

constexpr double kYearDays = 366.0;
constexpr double kWallBudgetSeconds = 60.0;
constexpr std::size_t kFuzzCases = 24;

/// Mild mixed nemesis for the year run: enough pressure to exercise the
/// degraded-mode machinery thousands of times without drowning the planned
/// path.
resilience::FaultInjectorConfig year_faults() {
  resilience::FaultInjectorConfig faults;
  faults.telemetry_nan_rate = 0.002;
  faults.telemetry_dropout_rate = 0.002;
  faults.battery_outage_rate = 0.01;
  faults.oracle_throw_rate = 0.01;
  faults.solver_failure_rate = 0.02;
  return faults;
}

/// The fault-rate sweep profile (solver + oracle scaled together, as in
/// ext_fault_injection's "mixed" kind but per-interval only, so the
/// fallback curve is driven by interval faults alone).
resilience::FaultInjectorConfig sweep_faults(double rate) {
  resilience::FaultInjectorConfig faults;
  faults.solver_failure_rate = rate;
  faults.oracle_throw_rate = rate / 2.0;
  faults.battery_outage_rate = rate / 4.0;
  return faults;
}

struct SweepCell {
  double fallback_rate = 0.0;
  std::size_t violations = 0;
  double output_checksum = 0.0;
};

std::vector<runtime::SweepResult<SweepCell>> run_rate_sweep(
    const std::vector<double>& rates, std::uint64_t seed,
    std::size_t threads) {
  runtime::ParamGrid grid;
  grid.axis("rate", rates);
  runtime::SweepRunner runner(runtime::SweepOptions{threads, seed,
                                                    "macro-dsim-rates"});
  return runner.run_grid(
      grid, [seed](const runtime::ParamGrid::Point& point,
                   runtime::TaskContext&) {
        dsim::PipelineSimConfig config;
        config.duration = kMonth;
        config.record_trace = false;
        config.faults = sweep_faults(point["rate"]);
        dsim::PipelineSim sim(config, seed);
        const dsim::PipelineSimResult result = sim.run();
        return SweepCell{result.health.fallback_rate(),
                         result.violations.size(), result.output_checksum};
      });
}

std::string digest(const std::vector<runtime::SweepResult<SweepCell>>& grid) {
  std::ostringstream out;
  for (const auto& result : grid)
    out << result.index << ":"
        << util::strfmt("%.9f", result.value.fallback_rate) << ":"
        << result.value.violations << ":"
        << util::strfmt("%.6f", result.value.output_checksum) << ";";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  smoother::bench::Harness harness(argc, argv);
  const std::uint64_t seed = harness.seed_or(kSeedWind);
  sim::print_experiment_header(
      std::cout, "macro: deterministic simulation",
      "a simulated year of the online pipeline on the dsim event loop: "
      "replay identity, invariant audit, fault monotonicity, trace fuzz");

  // --- Phase 1: the year run, twice (replay witness) -----------------------
  dsim::PipelineSimConfig year;
  year.duration = util::days(kYearDays);
  year.faults = year_faults();

  const auto start = std::chrono::steady_clock::now();
  const dsim::PipelineSimResult first = dsim::PipelineSim(year, seed).run();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  const dsim::PipelineSimResult second = dsim::PipelineSim(year, seed).run();

  const auto trace_diff =
      dsim::InvariantChecker::check_replay(first.event_trace,
                                           second.event_trace);
  const auto digest_diff =
      dsim::InvariantChecker::check_replay(first.records_digest,
                                           second.records_digest);
  const bool replay_identical = !trace_diff && !digest_diff;
  const bool year_clean = first.ok();
  const bool wall_ok = wall.count() < kWallBudgetSeconds;
  const double sim_speedup =
      first.sim_minutes * 60.0 / std::max(wall.count(), 1e-9);

  sim::TablePrinter year_table({"days", "samples", "intervals", "events",
                                "fallback_rate", "violations", "wall_s",
                                "sim_speedup"});
  year_table.add_row({util::strfmt("%.0f", kYearDays),
                      std::to_string(first.samples),
                      std::to_string(first.intervals),
                      std::to_string(first.events_executed),
                      util::strfmt("%.4f", first.health.fallback_rate()),
                      std::to_string(first.violations.size()),
                      util::strfmt("%.2f", wall.count()),
                      util::strfmt("%.0fx", sim_speedup)});
  year_table.print(std::cout);
  if (!year_clean)
    std::cout << "first violation: " << first.violations[0].invariant << ": "
              << first.violations[0].detail << "\n";
  if (!replay_identical)
    std::cout << "replay diverged: "
              << (trace_diff ? *trace_diff : *digest_diff) << "\n";

  // --- Phase 2: fallback monotone in the injected rate ---------------------
  const std::vector<double> rates = {0.0, 0.02, 0.05, 0.1, 0.2};
  const auto cells = run_rate_sweep(rates, seed, harness.threads());
  const auto serial = run_rate_sweep(rates, seed, 1);
  const bool deterministic = digest(cells) == digest(serial);

  std::vector<std::pair<double, double>> curve;
  bool sweep_clean = true;
  sim::TablePrinter sweep_table({"rate", "fallback_rate", "violations"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    curve.emplace_back(rates[i], cells[i].value.fallback_rate);
    sweep_clean = sweep_clean && cells[i].value.violations == 0;
    sweep_table.add_row({util::strfmt("%.2f", rates[i]),
                         util::strfmt("%.4f", cells[i].value.fallback_rate),
                         std::to_string(cells[i].value.violations)});
  }
  std::cout << "\n";
  sweep_table.print(std::cout);
  const auto monotone_diff = dsim::InvariantChecker::check_monotone_fallback(
      curve);
  const bool monotone = !monotone_diff;
  if (!monotone) std::cout << "monotonicity: " << *monotone_diff << "\n";

  // --- Phase 3: trace fuzz -------------------------------------------------
  dsim::PipelineSimConfig fuzz_base;
  fuzz_base.duration = kMonth;
  fuzz_base.record_trace = false;
  const dsim::TraceFuzzer fuzzer(fuzz_base);
  const dsim::FuzzReport fuzz = fuzzer.run(kFuzzCases, seed);
  std::cout << util::strfmt(
      "\nfuzz: %zu cases, %zu crashes, %zu violation cases\n", fuzz.cases_run,
      fuzz.crashes, fuzz.violation_cases);
  if (!fuzz.clean())
    std::cout << "minimal reproducer: " << fuzz.reproducer_description
              << "\n";

  const bool ok = year_clean && replay_identical && wall_ok && monotone &&
                  sweep_clean && deterministic && fuzz.clean();
  std::cout << "\ninvariants: year clean: " << (year_clean ? "yes" : "NO")
            << "; replay byte-identical: " << (replay_identical ? "yes" : "NO")
            << "; wall < " << util::strfmt("%.0f", kWallBudgetSeconds)
            << "s: " << (wall_ok ? "yes" : "NO")
            << "; fallback monotone: " << (monotone ? "yes" : "NO")
            << "; deterministic serial vs parallel: "
            << (deterministic ? "yes" : "NO")
            << "; fuzz clean: " << (fuzz.clean() ? "yes" : "NO") << "\n";

  // --- BENCH_dsim.json -----------------------------------------------------
  std::ostringstream json;
  json << "{\n  \"bench\": \"macro_dsim\",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"year\": {\n"
       << util::strfmt("    \"days\": %.0f,\n", kYearDays)
       << "    \"samples\": " << first.samples << ",\n"
       << "    \"intervals\": " << first.intervals << ",\n"
       << "    \"events\": " << first.events_executed << ",\n"
       << util::strfmt("    \"fallback_rate\": %.6f,\n",
                       first.health.fallback_rate())
       << "    \"violations\": " << first.violations.size() << ",\n"
       << util::strfmt("    \"wall_seconds\": %.3f,\n", wall.count())
       << util::strfmt("    \"sim_speedup\": %.0f,\n", sim_speedup)
       << "    \"replay_identical\": "
       << (replay_identical ? "true" : "false") << "\n  },\n"
       << "  \"rate_sweep\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i)
    json << util::strfmt(
        "    {\"rate\": %.2f, \"fallback_rate\": %.6f, \"violations\": "
        "%zu}%s\n",
        rates[i], cells[i].value.fallback_rate, cells[i].value.violations,
        i + 1 < cells.size() ? "," : "");
  json << "  ],\n"
       << "  \"fuzz\": {\n"
       << "    \"cases\": " << fuzz.cases_run << ",\n"
       << "    \"crashes\": " << fuzz.crashes << ",\n"
       << "    \"violation_cases\": " << fuzz.violation_cases << ",\n"
       << "    \"reproducer\": \""
       << (fuzz.clean() ? "" : fuzz.reproducer_description) << "\"\n  },\n"
       << "  \"monotone\": " << (monotone ? "true" : "false") << ",\n"
       << "  \"deterministic\": " << (deterministic ? "true" : "false")
       << ",\n  \"ok\": " << (ok ? "true" : "false") << "\n}\n";
  persist::atomic_write_file("BENCH_dsim.json", json.str());

  std::cout << "wrote BENCH_dsim.json"
            << (ok ? "; all dsim invariants hold.\n"
                   : "; INVARIANT VIOLATION — see flags above.\n");
  return ok ? 0 : 1;
}
