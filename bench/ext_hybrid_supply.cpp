// Extension: hybrid wind + solar supply.
//
// Night-peaking wind and day-peaking solar are complementary; for the same
// total installed capacity the hybrid bus is flatter, which both reduces
// what FS has to do and raises how much of the supply the workload can
// catch. Three arms at equal installed capacity: wind-only, solar-only,
// 60/40 hybrid — each raw and FS-smoothed.
#include "common.hpp"

#include "smoother/core/metrics.hpp"
#include "smoother/stats/descriptive.hpp"

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Extension: hybrid supply",
      "wind-only vs solar-only vs wind+solar at equal installed capacity");

  const trace::WebWorkloadModel web(trace::WebWorkloadPresets::nasa());
  const auto demand = sim::dynamic_power_series(
      web.generate(kWeek, util::kFiveMinutes, kSeedWeb),
      sim::paper_datacenter());

  struct Arm {
    std::string name;
    util::TimeSeries supply;
  };
  std::vector<Arm> arms;
  arms.push_back(
      {"wind only (976 kW)",
       sim::make_hybrid_supply(trace::WindSitePresets::texas_10(),
                               kCapacitySmall, util::Kilowatts{1e-6}, kWeek,
                               util::kFiveMinutes, kSeedWind)});
  arms.push_back(
      {"solar only (976 kW)",
       sim::make_hybrid_supply(trace::WindSitePresets::texas_10(),
                               util::Kilowatts{1e-6}, kCapacitySmall, kWeek,
                               util::kFiveMinutes, kSeedWind)});
  arms.push_back(
      {"hybrid 60/40",
       sim::make_hybrid_supply(trace::WindSitePresets::texas_10(),
                               kCapacitySmall * 0.6, kCapacitySmall * 0.4,
                               kWeek, util::kFiveMinutes, kSeedWind)});

  sim::TablePrinter table({"arm", "energy_kwh", "utilization",
                           "raw_switches", "w_fs_switches",
                           "supply_roughness_kw"});
  for (const auto& arm : arms) {
    auto config = sim::default_config(kCapacitySmall);
    const auto raw =
        sim::dispatch(arm.supply, demand, sim::DispatchPolicy::kDirect);
    const core::Smoother middleware(config);
    const auto smoothing = middleware.smooth_supply(arm.supply);
    const std::size_t fs_switches =
        sim::dispatch(smoothing.supply, demand, sim::DispatchPolicy::kDirect)
            .switching_times;
    table.add_row(
        {arm.name, util::strfmt("%.0f", arm.supply.total_energy().value()),
         util::strfmt("%.3f", raw.renewable_utilization),
         std::to_string(raw.switching_times), std::to_string(fs_switches),
         util::strfmt("%.0f",
                      stats::rms_successive_diff(arm.supply.values()))});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: the hybrid arm uses a larger fraction of "
               "its generation (day solar meets day demand; night wind "
               "needs deferral) and hands FS a calmer input. Smoother is "
               "source-agnostic: the same middleware ran all three arms.\n";
  return 0;
}
