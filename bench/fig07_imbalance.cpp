// Fig. 7: the imbalance between workload power demand and renewable power
// supply — the green area (supply above demand) is unusable without
// deferral or storage.
#include "common.hpp"

#include "smoother/core/metrics.hpp"

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Fig. 7",
      "supply/demand imbalance and unusable renewable energy");

  const auto scenario = sim::make_web_scenario(
      trace::WebWorkloadPresets::nasa(), trace::WindSitePresets::texas_10(),
      kCapacitySmall, util::days(2.0), kSeedWeb);

  std::cout << "minute,supply_kw,demand_kw\n";
  for (std::size_t i = 0; i < scenario.supply.size(); i += 3)
    std::cout << util::strfmt("%.0f,%.1f,%.1f\n",
                              scenario.supply.time_at(i).value(),
                              scenario.supply[i], scenario.demand[i]);

  const double generated = scenario.supply.total_energy().value();
  const double used =
      core::renewable_energy_used(scenario.supply, scenario.demand).value();
  const double wasted =
      core::unusable_renewable(scenario.supply, scenario.demand).value();
  const double grid =
      core::grid_energy_needed(scenario.supply, scenario.demand).value();
  std::cout << util::strfmt(
      "\ngenerated %.0f kWh, used %.0f kWh (%.0f%%), unusable %.0f kWh "
      "(%.0f%%), grid needed %.0f kWh\n",
      generated, used, 100.0 * used / generated, wasted,
      100.0 * wasted / generated, grid);
  std::cout << "paper shape: supply and demand fluctuate independently, so a "
               "large green (unusable) area appears whenever supply "
               "overshoots demand.\n";
  return 0;
}
