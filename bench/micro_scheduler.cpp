// Microbenchmark: scheduling throughput of Active Delay vs the baselines,
// and a full one-day smoothing pass.
#include <benchmark/benchmark.h>

#include "harness.hpp"

#include "smoother/core/active_delay.hpp"
#include "smoother/core/smoother.hpp"
#include "smoother/sim/experiments.hpp"
#include "smoother/sim/scenario.hpp"

namespace {

using namespace smoother;

sched::ScheduleRequest make_request(std::size_t num_jobs, std::uint64_t seed) {
  const auto horizon = util::days(2.0);
  sched::ScheduleRequest request;
  request.total_servers = 11000;
  request.renewable = sim::wind_power_series(
      trace::WindSitePresets::colorado_11005(), util::Kilowatts{976.0},
      horizon, util::kOneMinute, seed);

  power::DatacenterSpec spec;
  spec.server_count = request.total_servers;
  const power::DatacenterPowerModel dc(spec);
  trace::BatchWorkloadParams params = trace::BatchWorkloadPresets::hpc2n();
  const trace::BatchWorkloadModel model(params);
  auto jobs = model.generate(horizon, request.total_servers, dc, seed);
  // Trim or repeat to the requested count for a clean sweep axis.
  while (jobs.size() < num_jobs) {
    auto extra = jobs;
    for (auto& job : extra) job.id += jobs.size();
    jobs.insert(jobs.end(), extra.begin(), extra.end());
  }
  jobs.resize(num_jobs);
  request.jobs = std::move(jobs);
  return request;
}

void BM_ActiveDelay(benchmark::State& state) {
  const auto request =
      make_request(static_cast<std::size_t>(state.range(0)), 11);
  const core::ActiveDelayScheduler scheduler;
  for (auto _ : state) {
    auto result = scheduler.schedule(request);
    benchmark::DoNotOptimize(result.outcome.placements.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ActiveDelay)->Arg(100)->Arg(500)->Arg(2000);

void BM_ImmediateScheduler(benchmark::State& state) {
  const auto request =
      make_request(static_cast<std::size_t>(state.range(0)), 11);
  const sched::ImmediateScheduler scheduler;
  for (auto _ : state) {
    auto result = scheduler.schedule(request);
    benchmark::DoNotOptimize(result.outcome.placements.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ImmediateScheduler)->Arg(100)->Arg(500)->Arg(2000);

void BM_EdfScheduler(benchmark::State& state) {
  const auto request =
      make_request(static_cast<std::size_t>(state.range(0)), 11);
  const sched::EdfScheduler scheduler;
  for (auto _ : state) {
    auto result = scheduler.schedule(request);
    benchmark::DoNotOptimize(result.outcome.placements.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EdfScheduler)->Arg(100)->Arg(500)->Arg(2000);

void BM_SmoothFullDay(benchmark::State& state) {
  const auto supply = sim::wind_power_series(
      trace::WindSitePresets::texas_10(), util::Kilowatts{976.0},
      util::days(1.0), util::kFiveMinutes, 5);
  const auto config = sim::default_config(util::Kilowatts{976.0});
  const core::Smoother middleware(config);
  for (auto _ : state) {
    auto result = middleware.smooth_supply(supply);
    benchmark::DoNotOptimize(result.supply.values().data());
  }
}
BENCHMARK(BM_SmoothFullDay);

}  // namespace

// Harness integration: consume the shared bench flags (--threads /
// --metrics-out), leave google-benchmark's own flags for Initialize.
int main(int argc, char** argv) {
  const smoother::bench::Harness harness(
      argc, argv,
      smoother::bench::HarnessOptions{.description = "scheduler microbenchmarks",
                                      .pass_through_unknown = true});
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
