// Extension: resilience of the online middleware under injected faults.
//
// Sweeps fault kind x fault rate over the streaming OnlineSmoother on a
// week of synthetic high-volatility wind. Each grid point builds a fresh
// smoother + FaultInjector and feeds the corrupted telemetry through
// push(); the injector also wraps the forecast oracle, gates the battery
// monitor and cripples the QP at the injected intervals. Kinds: telemetry
// (NaN/dropout/spike/stuck), battery (outage windows + 10% capacity fade),
// oracle (throw/short/stale), solver (forced non-convergence), mixed (all
// of the above).
//
// Injector seeds are keyed by *kind*, not by grid index, so the fault
// streams for a kind are identical at every rate; keyed-by-index draws then
// make the fault sets nested in the rate. Three invariants are asserted on
// every run (exit code 1 on violation):
//
//   * zero fallbacks at 0% injected rate, for every kind;
//   * the fallback rate is monotone non-decreasing in the injected rate;
//   * the whole grid is byte-identical serial vs parallel (--threads N).
//
// Emits BENCH_resilience.json for the perf/robustness trajectory.
#include <sstream>

#include "common.hpp"
#include "smoother/core/online.hpp"
#include "smoother/persist/engine.hpp"
#include "smoother/resilience/fault_injector.hpp"

namespace {

using namespace smoother;
using namespace smoother::bench;

const char* const kKinds[] = {"telemetry", "battery", "oracle", "solver",
                              "mixed"};
constexpr std::size_t kKindCount = 5;

/// The injected-fault profile for (kind, rate). Rates within a kind are
/// spread evenly over its sub-kinds; "mixed" turns every category on.
resilience::FaultInjectorConfig faults_for(std::size_t kind, double rate) {
  resilience::FaultInjectorConfig config;
  const bool telemetry = kind == 0 || kind == 4;
  const bool battery = kind == 1 || kind == 4;
  const bool oracle = kind == 2 || kind == 4;
  const bool solver = kind == 3 || kind == 4;
  if (telemetry) {
    config.telemetry_nan_rate = rate / 4.0;
    config.telemetry_dropout_rate = rate / 4.0;
    config.telemetry_spike_rate = rate / 4.0;
    config.telemetry_stuck_rate = rate / 4.0;
  }
  if (battery) {
    config.battery_outage_rate = rate;
    config.battery_capacity_fade = rate > 0.0 ? 0.10 : 0.0;
  }
  if (oracle) {
    config.oracle_throw_rate = rate / 3.0;
    config.oracle_bad_length_rate = rate / 3.0;
    config.oracle_stale_rate = rate / 3.0;
  }
  if (solver) config.solver_failure_rate = rate;
  return config;
}

struct CellResult {
  std::size_t intervals = 0;
  std::size_t fallbacks = 0;
  double fallback_rate = 0.0;
  std::size_t samples_faulted = 0;
  std::size_t injected_faults = 0;
  std::size_t degraded_entries = 0;
  std::size_t recoveries = 0;
  double output_checksum = 0.0;  ///< determinism witness
  bool push_threw = false;
};

CellResult run_cell(const util::TimeSeries& supply, std::uint64_t seed,
                    std::size_t kind, double rate) {
  resilience::FaultInjector injector(faults_for(kind, rate), seed + kind);

  core::OnlineSmootherConfig config;
  config.rated_power = util::Kilowatts{800.0};
  config.warmup_intervals = 4;
  config.history_intervals = 48;
  // Tighter than the default 0.5: the guard detects NaN/dropout/overrange
  // but not stuck-at or low-magnitude spikes, so an interval with >1/4 of
  // its samples *detectably* repaired is already badly corrupted.
  config.max_faulted_fraction = 0.25;
  auto spec = battery::spec_for_max_rate(util::Kilowatts{488.0},
                                         util::kFiveMinutes, 2.0);
  core::OnlineSmoother smoother(config,
                                battery::Battery(injector.faded_spec(spec)));

  const std::size_t points = config.flexible_smoothing.points_per_interval;
  smoother.set_forecast_oracle(
      injector.wrap_oracle([&supply, points](std::size_t interval) {
        std::vector<double> predicted(points);
        for (std::size_t i = 0; i < points; ++i)
          predicted[i] = supply[interval * points + i];
        return predicted;
      }));
  smoother.set_battery_monitor([&injector](std::size_t interval) {
    return injector.battery_available(interval);
  });
  solver::QpSettings crippled = config.flexible_smoothing.qp;
  crippled.max_iterations = 0;
  smoother.set_solver_settings_hook(
      [&injector, crippled](
          std::size_t interval) -> std::optional<solver::QpSettings> {
        if (injector.solver_should_fail(interval)) return crippled;
        return std::nullopt;
      });

  CellResult cell;
  for (std::size_t i = 0; i < supply.size(); ++i) {
    try {
      smoother.push(injector.corrupt_sample(i, supply[i]));
    } catch (...) {
      cell.push_threw = true;  // contract violation: push must not throw
    }
  }

  const auto& health = smoother.health();
  cell.intervals = health.intervals_seen;
  cell.fallbacks = health.intervals_fallback;
  cell.fallback_rate = health.fallback_rate();
  cell.samples_faulted = health.samples_faulted;
  for (std::size_t k = 0; k < resilience::kFaultKindCount; ++k)
    cell.injected_faults += injector.injected()[k];
  cell.degraded_entries = health.degraded_entries;
  cell.recoveries = health.recoveries;
  for (std::size_t i = 0; i < smoother.output().size(); ++i)
    cell.output_checksum += smoother.output()[i];
  return cell;
}

std::vector<runtime::SweepResult<CellResult>> run_sweep(
    const util::TimeSeries& supply, std::uint64_t seed,
    const std::vector<double>& rates, std::size_t threads) {
  runtime::ParamGrid grid;
  std::vector<double> kind_axis;
  for (std::size_t k = 0; k < kKindCount; ++k)
    kind_axis.push_back(static_cast<double>(k));
  grid.axis("kind", kind_axis).axis("rate", rates);
  runtime::SweepRunner runner(
      runtime::SweepOptions{threads, seed, "ext-fault-injection"});
  return runner.run_grid(
      grid, [&supply, seed](const runtime::ParamGrid::Point& point,
                            runtime::TaskContext&) {
        return run_cell(supply, seed,
                        static_cast<std::size_t>(point["kind"]),
                        point["rate"]);
      });
}

std::string digest(const std::vector<runtime::SweepResult<CellResult>>& grid) {
  std::ostringstream out;
  for (const auto& result : grid)
    out << result.index << ":" << result.value.fallbacks << ":"
        << util::strfmt("%.6f", result.value.fallback_rate) << ":"
        << util::strfmt("%.6f", result.value.output_checksum) << ";";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  const std::size_t threads = harness.threads();
  const std::uint64_t seed = harness.seed_or(kSeedWind);
  sim::print_experiment_header(
      std::cout, "ext: fault injection",
      "online-middleware fallback behaviour under injected faults "
      "(kind x rate, week of high-volatility wind)");

  const trace::WindSpeedModel model(trace::WindSitePresets::texas_10());
  const auto supply = power::TurbineCurve::enercon_e48().power_series(
      model.generate(kWeek, util::kFiveMinutes, seed));

  const std::vector<double> rates = {0.0, 0.02, 0.05, 0.1, 0.2, 0.4};
  const auto results = run_sweep(supply, seed, rates, threads);

  sim::TablePrinter table({"kind", "rate", "intervals", "fallbacks",
                           "fallback_rate", "injected", "detected_samples",
                           "degraded", "recovered"});
  bool zero_rate_clean = true, monotone = true, no_throws = true;
  for (std::size_t k = 0; k < kKindCount; ++k) {
    double previous_rate = -1.0;
    for (std::size_t r = 0; r < rates.size(); ++r) {
      const CellResult& cell = results[k * rates.size() + r].value;
      no_throws = no_throws && !cell.push_threw;
      if (rates[r] == 0.0 && cell.fallbacks != 0) zero_rate_clean = false;
      if (cell.fallback_rate < previous_rate) monotone = false;
      previous_rate = cell.fallback_rate;
      table.add_row({kKinds[k], util::strfmt("%.2f", rates[r]),
                     std::to_string(cell.intervals),
                     std::to_string(cell.fallbacks),
                     util::strfmt("%.3f", cell.fallback_rate),
                     std::to_string(cell.injected_faults),
                     std::to_string(cell.samples_faulted),
                     std::to_string(cell.degraded_entries),
                     std::to_string(cell.recoveries)});
    }
  }
  table.print(std::cout);

  // Determinism: the grid must be byte-identical serial vs parallel.
  const auto serial = run_sweep(supply, seed, rates, 1);
  const bool deterministic = digest(results) == digest(serial);

  std::cout << "\ninvariants: zero-rate clean: "
            << (zero_rate_clean ? "yes" : "NO") << "; fallback monotone in "
            << "rate: " << (monotone ? "yes" : "NO")
            << "; no exception escaped push: " << (no_throws ? "yes" : "NO")
            << "; deterministic serial vs parallel: "
            << (deterministic ? "yes" : "NO") << "\n";

  std::ostringstream json;
  json << "{\n  \"bench\": \"ext_fault_injection\",\n"
       << "  \"supply\": \"texas_10 week, enercon_e48, seed "
       << seed << "\",\n"
       << "  \"zero_rate_clean\": " << (zero_rate_clean ? "true" : "false")
       << ",\n  \"monotone\": " << (monotone ? "true" : "false")
       << ",\n  \"no_throws\": " << (no_throws ? "true" : "false")
       << ",\n  \"deterministic\": " << (deterministic ? "true" : "false")
       << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& cell = results[i].value;
    json << util::strfmt(
        "    {\"kind\": \"%s\", \"rate\": %.2f, \"fallbacks\": %zu, "
        "\"fallback_rate\": %.4f, \"injected\": %zu, \"degraded\": %zu, "
        "\"recovered\": %zu}%s\n",
        kKinds[i / rates.size()], rates[i % rates.size()], cell.fallbacks,
        cell.fallback_rate, cell.injected_faults, cell.degraded_entries,
        cell.recoveries, i + 1 < results.size() ? "," : "");
  }
  json << "  ]\n}\n";
  persist::atomic_write_file("BENCH_resilience.json", json.str());

  const bool ok = zero_rate_clean && monotone && no_throws && deterministic;
  std::cout << "wrote BENCH_resilience.json"
            << (ok ? "; all resilience invariants hold.\n"
                   : "; INVARIANT VIOLATION — see flags above.\n");
  return ok ? 0 : 1;
}
