// Fig. 3: cumulative distribution of the hourly capacity-factor variance
// over one month (the paper used May 2011, California).
//
// The paper's x-axis is in raw power units; capacity factors here are
// normalized to [0,1], so the axis scale differs but the curve's shape —
// a long flat head and a steep tail — is the reproduction target. The
// CDF = 0.95 marker is the Region-II-2 threshold used everywhere else.
#include "common.hpp"

#include "smoother/power/capacity_factor.hpp"
#include "smoother/stats/cdf.hpp"

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Fig. 3",
      "CDF of hourly capacity-factor variance over one month");

  const auto supply = sim::wind_power_series(
      trace::WindSitePresets::california_9122(), kCapacitySmall, kMonth,
      util::kFiveMinutes, kSeedWind);
  const auto variances = power::interval_capacity_factor_variances(
      supply, kCapacitySmall, 12);
  const stats::EmpiricalCdf cdf(variances);

  std::cout << "cf_variance,cdf\n";
  for (const auto& [x, p] : cdf.curve(60))
    std::cout << util::strfmt("%.6g,%.4f\n", x, p);

  sim::TablePrinter marks({"cdf_level", "variance_threshold"});
  for (double level : {0.50, 0.80, 0.90, 0.95, 0.99})
    marks.add_row(std::vector<double>{level, cdf.value_at(level)});
  std::cout << '\n';
  marks.print(std::cout);
  std::cout << "\npaper shape: sharply concave CDF — most intervals are calm, "
               "a thin tail is violent; CDF=0.95 picks the Region-II-2 "
               "boundary.\n";
  return 0;
}
