// Microbenchmark of the smoother::runtime subsystem itself.
//
// Two workloads, each measured at 1/2/4/8 worker threads:
//   * sweep   — the Fig. 6 threshold-sweep grid, widened to 28 points
//               (7 CDF levels x 4 stable_cdf splits) so there is enough
//               parallel slack to measure; each task is one full
//               smooth + dispatch pass over a week-long trace.
//   * tiny    — 10,000 near-empty tasks through ThreadPool::submit, the
//               pure scheduling-overhead number (tasks/sec).
//
// Emits BENCH_runtime.json (and the same JSON on stdout) so future PRs
// have a perf trajectory to regress against, and asserts that the sweep
// results are byte-identical across thread counts — the determinism
// contract, checked on every bench run.
#include <sstream>

#include "common.hpp"
#include "smoother/persist/engine.hpp"

namespace {

using namespace smoother;
using namespace smoother::bench;

struct SweepMeasurement {
  std::size_t threads = 0;
  double wall_ms = 0.0;
  double speedup = 1.0;
  std::string digest;  ///< serialized results, for the determinism check
};

/// One full threshold-sweep grid pass; returns total wall ms and the
/// serialized per-point results.
SweepMeasurement run_threshold_grid(const sim::WebScenario& scenario,
                                    std::size_t threads) {
  runtime::ParamGrid grid;
  grid.axis("cdf_level", {0.80, 0.85, 0.90, 0.95, 0.98, 0.995, 1.0})
      .axis("stable_cdf", {0.0, 0.10, 0.25, 0.40});
  runtime::SweepRunner runner(
      runtime::SweepOptions{threads, 0, "micro-runtime-sweep"});
  const auto results = runner.run_grid(
      grid, [&scenario](const runtime::ParamGrid::Point& point,
                        runtime::TaskContext&) {
        auto config = sim::default_config(kCapacitySmall);
        config.extreme_cdf = point["cdf_level"];
        config.stable_cdf = point["stable_cdf"];
        const core::Smoother middleware(config);
        const auto smoothing = middleware.smooth_supply(scenario.supply);
        return sim::dispatch(smoothing.supply, scenario.demand,
                             sim::DispatchPolicy::kDirect)
            .switching_times;
      });
  std::ostringstream digest;
  for (const auto& result : results)
    digest << result.index << ":" << result.value << ";";
  SweepMeasurement measurement;
  measurement.threads = threads;
  measurement.wall_ms = runner.last_wall_ms();
  measurement.digest = digest.str();
  return measurement;
}

/// Scheduling overhead: 10k trivial tasks through submit(), in tasks/sec.
double tiny_task_throughput(std::size_t threads) {
  constexpr std::size_t kTasks = 10000;
  runtime::ThreadPool pool(threads);
  std::atomic<std::size_t> done{0};
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kTasks; ++i)
    (void)pool.submit([&done] { done.fetch_add(1); });
  pool.help_while([&done] { return done.load() == kTasks; });
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return static_cast<double>(kTasks) / elapsed.count();
}

}  // namespace

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  sim::print_experiment_header(
      std::cout, "micro: runtime",
      "serial-vs-parallel speedup of the work-stealing sweep engine");

  const auto scenario = sim::make_web_scenario(
      trace::WebWorkloadPresets::nasa(), trace::WindSitePresets::texas_10(),
      kCapacitySmall, kWeek, harness.seed_or(kSeedWind));

  const std::vector<std::size_t> ladder = {1, 2, 4, 8};

  // Best-of-3 per thread count keeps scheduling noise out of the
  // trajectory the JSON records.
  std::vector<SweepMeasurement> sweep;
  for (const std::size_t threads : ladder) {
    SweepMeasurement best;
    for (int rep = 0; rep < 3; ++rep) {
      auto measurement = run_threshold_grid(scenario, threads);
      if (rep == 0 || measurement.wall_ms < best.wall_ms) best = measurement;
    }
    sweep.push_back(best);
  }
  for (auto& measurement : sweep)
    measurement.speedup = sweep.front().wall_ms / measurement.wall_ms;

  bool deterministic = true;
  for (const auto& measurement : sweep)
    deterministic = deterministic &&
                    (measurement.digest == sweep.front().digest);

  std::vector<double> tiny;
  tiny.reserve(ladder.size());
  for (const std::size_t threads : ladder)
    tiny.push_back(tiny_task_throughput(threads));

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"micro_runtime\",\n"
       << "  \"grid\": \"fig06_threshold_sweep (7 levels x 4 splits)\",\n"
       << "  \"grid_tasks\": 28,\n"
       << "  \"hardware_concurrency\": "
       << runtime::resolve_thread_count(0) << ",\n"
       << "  \"deterministic_across_threads\": "
       << (deterministic ? "true" : "false") << ",\n"
       << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i)
    json << util::strfmt(
        "    {\"threads\": %zu, \"wall_ms\": %.2f, \"speedup\": %.2f}%s\n",
        sweep[i].threads, sweep[i].wall_ms, sweep[i].speedup,
        i + 1 < sweep.size() ? "," : "");
  json << "  ],\n"
       << "  \"tiny_tasks\": [\n";
  for (std::size_t i = 0; i < tiny.size(); ++i)
    json << util::strfmt(
        "    {\"threads\": %zu, \"tasks_per_sec\": %.0f}%s\n", ladder[i],
        tiny[i], i + 1 < tiny.size() ? "," : "");
  json << "  ]\n}\n";

  std::cout << json.str();
  persist::atomic_write_file("BENCH_runtime.json", json.str());
  std::cout << "\nwrote BENCH_runtime.json"
            << (deterministic
                    ? "; sweep results byte-identical at every thread count.\n"
                    : "; WARNING: results differed across thread counts!\n");
  return deterministic ? 0 : 1;
}
