// Fig. 17: renewable power utilization, "W/ FS and W/O AD" vs "W/ FS and
// W/ AD", for the four Table II batch workloads under low and high
// renewable supply. The paper's headline: +169.85 % on average, with the
// biggest jump for HPC2N under low supply (0.19 -> 0.81).
#include "common.hpp"

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Fig. 17",
      "renewable utilization without vs with Active Delay (FS always on)");

  sim::TablePrinter table({"workload", "supply", "wo_ad", "w_ad",
                           "improvement_%", "misses_wo", "misses_w"});
  double improvement_sum = 0.0;
  std::size_t arms = 0;
  for (const auto& batch : trace::BatchWorkloadPresets::all()) {
    for (double ratio : {0.5, 1.5}) {
      const auto scenario = sim::make_batch_scenario(
          batch, trace::WindSitePresets::colorado_11005(), ratio,
          util::days(4.0), kServers, kSeedBatch);
      const auto cmp = sim::run_utilization_comparison(
          scenario, sim::default_config(util::Kilowatts{scenario.supply.max()}));
      improvement_sum += cmp.improvement_percent();
      ++arms;
      table.add_row({batch.name, ratio < 1.0 ? "low (0.5x)" : "high (1.5x)",
                     util::strfmt("%.3f", cmp.without_ad),
                     util::strfmt("%.3f", cmp.with_ad),
                     util::strfmt("%+.1f", cmp.improvement_percent()),
                     std::to_string(cmp.deadline_misses_without),
                     std::to_string(cmp.deadline_misses_with)});
    }
  }
  table.print(std::cout);
  std::cout << util::strfmt(
      "\naverage utilization improvement: %+.1f%% (paper: +169.85%%)\n",
      improvement_sum / static_cast<double>(arms));
  std::cout << "paper shape: AD improves every workload/supply arm; "
               "utilization ends lower when supply is plentiful (the "
               "workload can only absorb its own energy need).\n";
  return 0;
}
