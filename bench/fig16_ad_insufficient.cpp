// Fig. 16: Active Delay with *insufficient* renewable power — the adjusted
// demand soaks up nearly all of the scarce supply.
#include "common.hpp"

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Fig. 16", "Active Delay with insufficient renewable power");

  const auto scenario = sim::make_batch_scenario(
      trace::BatchWorkloadPresets::hpc2n(),
      trace::WindSitePresets::colorado_11005(), /*supply_ratio=*/0.5,
      util::days(2.0), kServers, kSeedBatch);
  const auto config =
      sim::default_config(util::Kilowatts{scenario.supply.max()});

  core::SmootherConfig with_ad = config;
  with_ad.enable_active_delay = true;
  const auto ad = core::Smoother(with_ad).run(scenario.supply, scenario.jobs,
                                              scenario.total_servers);
  core::SmootherConfig no_ad = config;
  no_ad.enable_active_delay = false;
  const auto imm = core::Smoother(no_ad).run(scenario.supply, scenario.jobs,
                                             scenario.total_servers);

  const auto supply = ad.smoothing.supply.resample(util::kOneMinute);
  std::cout << "minute,supply_kw,demand_initial_kw,demand_with_ad_kw\n";
  for (std::size_t i = 0; i < supply.size(); i += 15)
    std::cout << util::strfmt("%.0f,%.1f,%.1f,%.1f\n",
                              supply.time_at(i).value(), supply[i],
                              imm.schedule.demand[i], ad.schedule.demand[i]);

  std::cout << util::strfmt(
      "\nrenewable utilization: initial %.3f -> with AD %.3f "
      "(supply %.0f kWh = 0.5x workload energy %.0f kWh)\n",
      imm.renewable_utilization, ad.renewable_utilization,
      scenario.renewable_energy.value(), scenario.workload_energy.value());
  std::cout << "paper shape: with scarce supply AD pulls jobs onto every "
               "windy stretch, driving utilization far above the immediate "
               "schedule's.\n";
  return 0;
}
