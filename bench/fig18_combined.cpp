// Fig. 18: energy switching times of "W/O FS + W/ AD" vs "W/ FS + W/ AD"
// across batch workloads and wind traces. The paper's claim: adding FS on
// top of AD cuts switching times by more than 25 %.
#include "common.hpp"

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Fig. 18",
      "switching times: W/O FS + W/ AD vs W/ FS + W/ AD");

  const trace::WindSiteParams sites[] = {
      trace::WindSitePresets::texas_10(),
      trace::WindSitePresets::colorado_11005()};
  sim::TablePrinter table(
      {"workload", "wind", "wo_fs_w_ad", "w_fs_w_ad", "reduction_%"});
  double reduction_sum = 0.0;
  std::size_t arms = 0;
  for (const auto& batch : trace::BatchWorkloadPresets::all()) {
    for (const auto& site : sites) {
      const auto scenario = sim::make_batch_scenario(
          batch, site, 1.0, util::days(4.0), kServers, kSeedBatch + arms);
      const auto cmp = sim::run_combined_comparison(
          scenario, sim::default_config(util::Kilowatts{scenario.supply.max()}));
      reduction_sum += cmp.reduction_percent();
      ++arms;
      table.add_row({batch.name, site.name, std::to_string(cmp.without_fs),
                     std::to_string(cmp.with_fs),
                     util::strfmt("%.1f", cmp.reduction_percent())});
    }
  }
  table.print(std::cout);
  std::cout << util::strfmt(
      "\naverage switching reduction: %.1f%% (paper: more than 25%%)\n",
      reduction_sum / static_cast<double>(arms));
  return 0;
}
