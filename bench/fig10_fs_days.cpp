// Fig. 10: four days of different wind-fluctuation intensity ("May 2, 14,
// 18 and 23, 2011"), and the energy switching times with vs without
// Flexible Smoothing on each day.
//
// Day presets are ordered smooth -> most fluctuating (May 2 analog first);
// the paper's claim to reproduce: FS cuts switching the most on the most
// fluctuating day and has little left to do on the calm one.
#include "common.hpp"

#include "smoother/stats/descriptive.hpp"

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Fig. 10",
      "switching times W/O FS vs W/ FS across four volatility days");

  // Shared demand: NASA web workload on the evaluation fleet.
  const trace::WebWorkloadModel web(trace::WebWorkloadPresets::nasa());
  const auto demand = sim::dynamic_power_series(
      web.generate(util::days(1.0), util::kFiveMinutes, kSeedWeb),
      sim::paper_datacenter());

  static constexpr const char* kDayNames[] = {"May-02 (calm)", "May-14",
                                              "May-23", "May-18 (roughest)"};
  sim::TablePrinter table({"day", "roughness_kw", "wo_fs_switches",
                           "w_fs_switches", "reduction_%"});
  for (std::size_t day = 0; day < 4; ++day) {
    const trace::WindSpeedModel model(trace::fig10_day_params(day));
    const auto supply =
        power::TurbineCurve::enercon_e48().power_series(
            model.generate_day(kSeedWind + day)) *
        (kCapacitySmall.value() / 800.0);
    auto config = sim::default_config(kCapacitySmall);
    // A single day is too short to derive thresholds from itself alone;
    // use a month of the same day-preset as history.
    const auto history =
        power::TurbineCurve::enercon_e48().power_series(
            model.generate(util::days(28.0), util::kFiveMinutes,
                           kSeedWind + 100 + day)) *
        (kCapacitySmall.value() / 800.0);

    const std::size_t raw =
        sim::dispatch(supply, demand, sim::DispatchPolicy::kDirect)
            .switching_times;
    const core::Smoother middleware(config);
    const auto classifier = middleware.make_classifier(history);
    battery::Battery battery(config.battery, config.initial_soc_fraction);
    const core::FlexibleSmoothing fs(config.flexible_smoothing);
    const auto smoothing = fs.smooth(supply, classifier, battery);
    const std::size_t smoothed =
        sim::dispatch(smoothing.supply, demand, sim::DispatchPolicy::kDirect)
            .switching_times;
    const double reduction =
        raw > 0 ? 100.0 * (static_cast<double>(raw) -
                           static_cast<double>(smoothed)) /
                      static_cast<double>(raw)
                : 0.0;
    table.add_row({kDayNames[day],
                   util::strfmt("%.0f",
                                stats::rms_successive_diff(supply.values())),
                   std::to_string(raw), std::to_string(smoothed),
                   util::strfmt("%.0f", reduction)});
  }
  table.print(std::cout);
  std::cout << "\npaper shape: the roughest day shows the largest absolute "
               "switching-time drop; the calm day changes little.\n";
  return 0;
}
