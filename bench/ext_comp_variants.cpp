// Extension: Comp-baseline fairness ablation.
//
// The paper's Comp is a cost-greedy storage controller that is SoC-blind
// in its discharge decisions (our DispatchPolicy::kComp, burst discharge).
// A fairer-to-the-baseline variant tracks the demand exactly
// (kCompMatching). This bench shows both against FS, plus a hysteresis
// (deadband) sensitivity on the switching metric itself, so the headline
// comparisons cannot hide behind either modelling choice.
#include "common.hpp"

#include "smoother/core/metrics.hpp"
#include "smoother/stats/descriptive.hpp"

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Extension: Comp variants",
      "burst vs demand-matching Comp vs FS, and deadband sensitivity");

  const auto scenario = sim::make_web_scenario(
      trace::WebWorkloadPresets::nasa(), trace::WindSitePresets::texas_10(),
      kCapacitySmall, kWeek, kSeedWind);
  const auto config = sim::default_config(kCapacitySmall);

  // Effective supplies of each arm.
  battery::Battery burst_battery(config.battery);
  const auto burst = sim::dispatch(scenario.supply, scenario.demand,
                                   sim::DispatchPolicy::kComp, &burst_battery);
  battery::Battery match_battery(config.battery);
  const auto matching =
      sim::dispatch(scenario.supply, scenario.demand,
                    sim::DispatchPolicy::kCompMatching, &match_battery);
  const core::Smoother middleware(config);
  const auto fs_supply = middleware.smooth_supply(scenario.supply).supply;

  sim::TablePrinter table({"arm", "switches_plain", "switches_db_2%",
                           "switches_db_5%", "supply_roughness_kw",
                           "spilled_kwh"});
  const auto row = [&](const std::string& name,
                       const util::TimeSeries& supply, double spilled) {
    table.add_row(
        {name,
         std::to_string(core::energy_switching_times(supply, scenario.demand)),
         std::to_string(core::energy_switching_times_hysteresis(
             supply, scenario.demand, 0.02)),
         std::to_string(core::energy_switching_times_hysteresis(
             supply, scenario.demand, 0.05)),
         util::strfmt("%.0f", stats::rms_successive_diff(supply.values())),
         util::strfmt("%.0f", spilled)});
  };
  row("raw (no storage)", scenario.supply,
      core::unusable_renewable(scenario.supply, scenario.demand).value());
  row("Comp burst (paper's)", burst.effective_supply,
      burst.spilled_renewable.value());
  row("Comp demand-matching", matching.effective_supply,
      matching.spilled_renewable.value());
  row("W/ FS", fs_supply,
      core::unusable_renewable(fs_supply, scenario.demand).value());
  table.print(std::cout);

  std::cout
      << "\nreading: the idealized demand-matching controller is a strong "
         "baseline on crossing counts — its supply *tracks the demand* "
         "whenever the battery has charge. But tracking the demand is not "
         "a stable supply: its roughness stays near the raw trace's, so "
         "the grid-side ROCOF problem the paper targets persists. FS is "
         "the only arm that actually flattens the delivered supply "
         "(roughness far below all others) while also cutting crossings. "
         "Burst Comp (the paper's critique target) is worst on both.\n";
  return 0;
}
