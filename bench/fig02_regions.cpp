// Fig. 2: differentiated regions in a wind power trace.
//
// One day of volatile wind labelled per hourly interval: Region-I (stable),
// Region-II-1 (smoothable), Region-II-2 (extreme), using thresholds derived
// from a month of history at the same site.
#include "common.hpp"

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Fig. 2", "fluctuation regions in a wind power trace");

  const auto site = trace::WindSitePresets::texas_10();
  const auto history = sim::wind_power_series(site, kCapacitySmall,
                                              util::days(28.0),
                                              util::kFiveMinutes, kSeedWind);
  const auto day = sim::wind_power_series(site, kCapacitySmall,
                                          util::days(1.0), util::kFiveMinutes,
                                          kSeedWind + 17);

  auto config = sim::default_config(kCapacitySmall);
  const core::Smoother middleware(config);
  const core::RegionClassifier classifier = middleware.make_classifier(history);
  const auto intervals = classifier.classify(day);

  std::cout << "# wind power (5-min), one day:\n";
  sim::print_series_csv(std::cout, "wind_kw", day, 96);

  std::cout << "\n# hourly interval labels:\n";
  sim::TablePrinter table({"hour", "cf_variance", "region"});
  for (std::size_t i = 0; i < intervals.size(); ++i)
    table.add_row({std::to_string(i),
                   util::strfmt("%.5f", intervals[i].cf_variance),
                   core::to_string(intervals[i].region)});
  table.print(std::cout);

  const auto fractions = core::RegionClassifier::region_fractions(intervals);
  std::cout << util::strfmt(
      "\nfractions: Region-I %.0f%%, Region-II-1 %.0f%%, Region-II-2 %.0f%%\n",
      100.0 * fractions[0], 100.0 * fractions[1], 100.0 * fractions[2]);
  std::cout << "paper shape: most of the day in Region-II-1, calm/rated "
               "stretches in Region-I, a few extreme bursts in Region-II-2.\n";
  return 0;
}
