// Extension: Smoother on solar PV (paper contribution #3: "suitable for a
// variety of renewable energy ... executing similar operations").
//
// Runs the identical region/FS/metrics machinery on PV supply from a calm
// desert site and a cloud-broken coastal site — and exposes a subtlety the
// paper's wind-only evaluation never hits: the Eq. 9 minimize-variance
// objective treats the deterministic sunrise/sunset ramp as "fluctuation"
// and staircases it, which can *add* supply/demand crossings on clear days.
// The trend-aware objective (SmoothingObjective::kAroundTrend, paired with
// detrended region classification) buffers only the cloud noise and lets
// the ramp through. Both arms are reported.
#include "common.hpp"

#include "smoother/power/solar.hpp"
#include "smoother/stats/descriptive.hpp"
#include "smoother/trace/solar_model.hpp"

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Extension: solar",
      "Flexible Smoothing on PV supply (mean vs trend-aware objective)");

  const power::PvArray array;  // 800 kW rated, like the E48
  const trace::WebWorkloadModel web(trace::WebWorkloadPresets::nasa());
  const auto demand = sim::dynamic_power_series(
      web.generate(kWeek, util::kFiveMinutes, kSeedWeb),
      sim::paper_datacenter());

  sim::TablePrinter table({"site", "objective", "capacity_factor",
                           "raw_switches", "w_fs_switches",
                           "supply_roughness_kw", "battery_cycles"});
  for (const auto& site :
       {trace::SolarSitePresets::desert(), trace::SolarSitePresets::coastal()}) {
    const trace::SolarIrradianceModel model(site);
    const auto supply = array.power_series(
        model.generate(kWeek, util::kFiveMinutes, kSeedWind));
    const std::size_t raw =
        sim::dispatch(supply, demand, sim::DispatchPolicy::kDirect)
            .switching_times;

    for (const auto objective : {core::SmoothingObjective::kAroundMean,
                                 core::SmoothingObjective::kAroundTrend}) {
      auto config = sim::default_config(array.spec().rated_power);
      config.flexible_smoothing.objective = objective;
      const core::Smoother middleware(config);
      double cycles = 0.0;
      const auto smoothing = middleware.smooth_supply(supply, &cycles);
      const std::size_t switches =
          sim::dispatch(smoothing.supply, demand, sim::DispatchPolicy::kDirect)
              .switching_times;
      table.add_row(
          {site.name,
           objective == core::SmoothingObjective::kAroundMean ? "mean (Eq.9)"
                                                              : "trend-aware",
           util::strfmt("%.3f",
                        supply.mean() / array.spec().rated_power.value()),
           std::to_string(raw), std::to_string(switches),
           util::strfmt("%.1f", stats::rms_successive_diff(
                                    smoothing.supply.values())),
           util::strfmt("%.1f", cycles)});
    }
  }
  table.print(std::cout);
  std::cout << "\nreading: on the cloudy coastal site both objectives cut "
               "switching; on the clear desert site the mean objective "
               "staircases the solar ramp — extra crossings vs raw, high "
               "roughness, an order of magnitude more battery cycles — "
               "while the trend-aware objective leaves clear ramps nearly "
               "untouched (battery churn collapses, roughness drops, "
               "switching returns to the raw level). Same middleware code "
               "path as wind throughout.\n";
  return 0;
}
