// bench::Harness — the one entry point every bench binary goes through.
//
// Replaces the old free-function flag parsing (parse_threads_flag): the
// harness owns the ArgParser, so every figure/table/micro binary accepts
// the same flags with the same semantics and none of them defines its own
// parser:
//
//   --threads N       worker count for SweepRunner grids (0 = all hardware
//                     threads, 1 = strictly serial). Results are ordered by
//                     grid index, so printed output is identical for every
//                     thread count.
//   --metrics-out F   enable the smoother::obs layer for the run and write
//                     the collected metrics + trace to F as JSON. Without
//                     the flag no registry/tracer is installed and every
//                     instrumentation site is a single relaxed null-check —
//                     the figure outputs are byte-identical either way.
//   --seed N          override the binary's base experiment seed. Absent,
//                     every binary keeps its fixed built-in seed (so the
//                     checked-in figures stay byte-identical run to run);
//                     present, it reseeds the stochastic inputs — the dsim
//                     fuzz campaigns and sweep benches use it to explore
//                     fresh seed universes without recompiling.
//
// The harness also centralizes the experiment constants (seeds, installed
// capacities) behind accessors and exposes the output sink the binaries
// print their tables to, so a future run could redirect it wholesale.
//
// Pass-through mode (HarnessOptions::pass_through_unknown) is for the
// google-benchmark micros: the harness consumes its own flags and leaves
// everything else (--benchmark_filter=..., --benchmark_format=...) in argv
// for benchmark::Initialize to pick up.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "smoother/obs/metrics.hpp"
#include "smoother/obs/trace.hpp"
#include "smoother/persist/engine.hpp"
#include "smoother/util/args.hpp"
#include "smoother/util/units.hpp"

namespace smoother::bench {

struct HarnessOptions {
  std::string description =
      "regenerates one figure/table of the paper's evaluation";
  /// Leave unrecognized arguments in argv (google-benchmark micros) instead
  /// of rejecting them with usage + exit(2).
  bool pass_through_unknown = false;
};

class Harness {
 public:
  /// The fixed experiment seeds; the bench output is bit-reproducible run
  /// to run because every stochastic input derives from these.
  struct Seeds {
    std::uint64_t wind = 20110501;   ///< "May 2011"
    std::uint64_t web = 19950828;    ///< ITA log era
    std::uint64_t batch = 20050209;  ///< archive log era
  };

  /// Parses argv. On a flag error prints the problem + usage and exits
  /// with status 2 (the old parse_threads_flag contract). In pass-through
  /// mode, consumed flags are removed from argv and argc is updated.
  Harness(int& argc, char** argv, HarnessOptions options = HarnessOptions{})
      : program_(argc > 0 ? argv[0] : "bench") {
    if (options.pass_through_unknown) {
      parse_pass_through(argc, argv);
    } else {
      parse_strict(argc, argv, options.description);
    }
    if (!metrics_path_.empty()) {
      registry_.emplace();
      tracer_.emplace();
      metrics_scope_.emplace(&*registry_);
      tracer_scope_.emplace(&*tracer_);
    }
  }

  /// Uninstalls the obs layer and writes the metrics file (if requested).
  ~Harness() {
    // Scopes first: no instrumentation may fire while we serialize.
    tracer_scope_.reset();
    metrics_scope_.reset();
    if (!metrics_path_.empty()) write_metrics_file();
  }

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  /// --threads value (0 = one worker per hardware thread, 1 = serial).
  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// True when --seed was passed on the command line.
  [[nodiscard]] bool has_seed() const { return seed_.has_value(); }

  /// The --seed value, or `fallback` (the binary's fixed built-in seed)
  /// when the flag is absent.
  [[nodiscard]] std::uint64_t seed_or(std::uint64_t fallback) const {
    return seed_.value_or(fallback);
  }

  /// The shared experiment seeds.
  [[nodiscard]] static constexpr Seeds seeds() { return Seeds{}; }

  /// The paper's two installed wind capacities (Figs. 11-14).
  [[nodiscard]] static constexpr util::Kilowatts capacity_small() {
    return util::Kilowatts{976.0};
  }
  [[nodiscard]] static constexpr util::Kilowatts capacity_large() {
    return util::Kilowatts{1525.0};
  }

  /// Where the binary's tables/figures go. One sink for the whole binary so
  /// output can be redirected in one place.
  [[nodiscard]] std::ostream& out() const { return *out_; }

  /// True when --metrics-out enabled the obs layer for this run.
  [[nodiscard]] bool metrics_enabled() const { return registry_.has_value(); }

  [[nodiscard]] const std::string& metrics_path() const {
    return metrics_path_;
  }

  /// The harness-owned registry/tracer (null without --metrics-out). These
  /// are also installed as the process-global instances for the harness's
  /// lifetime, so instrumented library code reports here automatically.
  [[nodiscard]] obs::MetricsRegistry* metrics() {
    return registry_ ? &*registry_ : nullptr;
  }
  [[nodiscard]] obs::Tracer* tracer() {
    return tracer_ ? &*tracer_ : nullptr;
  }

 private:
  void parse_strict(int argc, char** argv, const std::string& description) {
    util::ArgParser parser(program_, description);
    parser.add_option("threads",
                      "worker threads for grid sweeps (0 = all hardware "
                      "threads, 1 = serial)",
                      "0");
    parser.add_option("metrics-out",
                      "write collected obs metrics + trace to FILE as JSON "
                      "(empty = observability off)",
                      "");
    parser.add_option("seed",
                      "override the base experiment seed (empty = the "
                      "binary's fixed built-in seed)",
                      "");
    try {
      const auto parsed =
          parser.parse(std::vector<std::string>(argv + 1, argv + argc));
      threads_ =
          static_cast<std::size_t>(parsed.unsigned_integer("threads"));
      metrics_path_ = parsed.get("metrics-out");
      if (!parsed.get("seed").empty())
        seed_ = parsed.unsigned_integer("seed");
    } catch (const util::ArgError& error) {
      std::cerr << error.what() << "\n" << parser.usage();
      std::exit(2);
    }
  }

  /// Manual scan for pass-through mode: pull out `--threads N` /
  /// `--metrics-out F` (space- or =-separated), compact argv around them.
  void parse_pass_through(int& argc, char** argv) {
    int write = 1;
    for (int read = 1; read < argc; ++read) {
      const std::string arg = argv[read];
      auto value_of = [&](const std::string& flag,
                          std::string& out) -> bool {
        if (arg == flag) {
          if (read + 1 >= argc) {
            std::cerr << program_ << ": " << flag << " needs a value\n";
            std::exit(2);
          }
          out = argv[++read];
          return true;
        }
        if (arg.rfind(flag + "=", 0) == 0) {
          out = arg.substr(flag.size() + 1);
          return true;
        }
        return false;
      };
      std::string value;
      if (value_of("--threads", value)) {
        threads_ = static_cast<std::size_t>(std::strtoull(
            value.c_str(), nullptr, 10));
      } else if (value_of("--metrics-out", value)) {
        metrics_path_ = value;
      } else if (value_of("--seed", value)) {
        seed_ = std::strtoull(value.c_str(), nullptr, 10);
      } else {
        argv[write++] = argv[read];
      }
    }
    argc = write;
    argv[argc] = nullptr;
  }

  void write_metrics_file() const {
    std::ostringstream file;
    file << "{\n  \"bench\": \"" << program_ << "\",\n  \"metrics\": "
         << registry_->to_json() << ",\n  \"trace\": [";
    const std::vector<std::string> events = tracer_->lines();
    for (std::size_t i = 0; i < events.size(); ++i)
      file << (i == 0 ? "\n    " : ",\n    ") << events[i];
    file << (events.empty() ? "]" : "\n  ]") << "\n}\n";
    // Temp file + rename: a crashed or concurrent bench run can never leave
    // a truncated metrics file behind for the smoke checks to choke on.
    try {
      persist::atomic_write_file(metrics_path_, file.str());
    } catch (const std::exception& e) {
      std::cerr << program_ << ": cannot write " << metrics_path_ << ": "
                << e.what() << "\n";
    }
  }

  std::string program_;
  std::size_t threads_ = 0;
  std::optional<std::uint64_t> seed_;
  std::string metrics_path_;
  std::ostream* out_ = &std::cout;
  std::optional<obs::MetricsRegistry> registry_;
  std::optional<obs::Tracer> tracer_;
  std::optional<obs::GlobalMetricsScope> metrics_scope_;
  std::optional<obs::GlobalTracerScope> tracer_scope_;
};

}  // namespace smoother::bench
