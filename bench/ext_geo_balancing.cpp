// Extension: geographic load balancing (Greenware-style, related work
// [14]) composed with Active Delay.
//
// A two-site federation (volatile TX wind + calm CA wind, independently
// generated so their lulls rarely coincide) against the same batch stream:
// confining the jobs to one site vs greedy renewable-headroom balancing.
#include "common.hpp"

#include "smoother/sim/geo.hpp"

int main(int argc, char** argv) {
  using namespace smoother;
  using namespace smoother::bench;
  const smoother::bench::Harness harness(argc, argv);
  const std::size_t threads = harness.threads();
  sim::print_experiment_header(
      std::cout, "Extension: geo balancing",
      "two-site federation vs single site, Active Delay at every site");

  // Two half-capacity farms: neither site alone covers the workload, so
  // where the jobs land matters. Site supplies are independent traces, so
  // their (expensive) generation is itself a two-task sweep; the fixed
  // per-site seeds keep the traces identical for every --threads.
  const auto horizon = util::days(4.0);
  const util::Kilowatts per_site = kCapacitySmall * 0.5;
  runtime::SweepRunner runner(
      runtime::SweepOptions{threads, 0, "ext-geo-balancing"});

  struct SiteSpec {
    const char* name;
    trace::WindSiteParams params;
    std::uint64_t seed;
  };
  const std::vector<SiteSpec> site_specs = {
      {"TX(10)", trace::WindSitePresets::texas_10(), kSeedWind},
      {"WY(16419)", trace::WindSitePresets::wyoming_16419(), kSeedWind + 1},
  };
  auto site_results =
      runner.run(site_specs.size(), [&](runtime::TaskContext& ctx) {
        const SiteSpec& spec = site_specs[ctx.index];
        return sim::GeoSite{
            spec.name,
            sim::wind_power_series(spec.params, per_site, horizon,
                                   util::kOneMinute, spec.seed),
            kServers};
      });
  std::vector<sim::GeoSite> sites;
  sites.reserve(site_results.size());
  for (auto& result : site_results) sites.push_back(std::move(result.value));

  const auto scenario = sim::make_batch_scenario(
      trace::BatchWorkloadPresets::lanl_cm5(),
      trace::WindSitePresets::texas_10(), 2.0, horizon, kServers, kSeedBatch);

  sim::TablePrinter table({"policy", "jobs_site0", "jobs_site1",
                           "renewable_used_kwh", "utilization",
                           "deadline_misses"});
  const std::vector<sim::GeoPolicy> policies = {
      sim::GeoPolicy::kSingleSite, sim::GeoPolicy::kRenewableHeadroom};
  auto policy_rows = runner.run(
      policies.size(),
      [&](runtime::TaskContext& ctx) -> std::vector<std::string> {
        const auto policy = policies[ctx.index];
        const auto result = sim::geo_schedule(scenario.jobs, sites, policy);
        return {sim::to_string(policy),
                std::to_string(result.jobs_per_site[0]),
                std::to_string(result.jobs_per_site[1]),
                util::strfmt("%.0f", result.total_renewable_used.value()),
                util::strfmt("%.3f", result.total_renewable_utilization),
                std::to_string(result.total_deadline_misses)};
      });
  for (auto& row : policy_rows) table.add_row(std::move(row.value));
  table.print(std::cout);
  std::cout << util::strfmt(
      "\n(workload energy %.0f kWh; per-site generation: %s %.0f kWh, %s "
      "%.0f kWh)\n",
      scenario.workload_energy.value(), sites[0].name.c_str(),
      sites[0].supply.total_energy().value(), sites[1].name.c_str(),
      sites[1].supply.total_energy().value());
  std::cout << "expected shape: balancing catches renewable energy the "
               "single site would spill during its lulls — higher total "
               "use from the same job stream. Composes with, not replaces, "
               "Active Delay (each site still defers internally).\n";
  return 0;
}
