// Fig. 6: effect of the Region-II-1 / Region-II-2 variance threshold.
//
// Sweeps the CDF level that separates Region-II-1 from Region-II-2 (the
// fraction of intervals FS is allowed to smooth) and reports, per level:
// switching times without smoothing, with smoothing, and the required
// maximum battery charge/discharge rate ("Battery MaxVol" — which, under
// the paper's sizing rule, also tracks the required battery capacity).
//
// Also reports the Region-I ablation (stable_cdf -> 0) the paper discusses:
// smoothing even the flat intervals costs battery operations for little
// switching gain.
#include "common.hpp"

int main() {
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Fig. 6",
      "threshold sweep: switching times and required battery rate vs CDF");

  const auto scenario = sim::make_web_scenario(
      trace::WebWorkloadPresets::nasa(), trace::WindSitePresets::texas_10(),
      kCapacitySmall, kWeek, kSeedWind);

  const std::size_t raw_switches =
      sim::dispatch(scenario.supply, scenario.demand,
                    sim::DispatchPolicy::kDirect)
          .switching_times;

  sim::TablePrinter table({"cdf_level", "wo_smooth_switches",
                           "w_smooth_switches", "battery_maxvol_kw",
                           "battery_capacity_kwh", "smoothed_intervals",
                           "battery_cycles"});
  for (double level : {0.80, 0.85, 0.90, 0.95, 0.98, 0.995, 1.0}) {
    auto config = sim::default_config(kCapacitySmall);
    config.extreme_cdf = level;
    // Give FS a generous battery so the *required* rate is observed, not
    // clipped: the sweep asks how big a battery each level would need.
    config.battery = battery::spec_for_max_rate(kCapacitySmall,
                                                util::kFiveMinutes, 2.0);
    config.battery.charge_efficiency = 1.0;
    config.battery.discharge_efficiency = 1.0;
    const core::Smoother middleware(config);
    double cycles = 0.0;
    const auto smoothing = middleware.smooth_supply(scenario.supply, &cycles);
    const std::size_t switches =
        sim::dispatch(smoothing.supply, scenario.demand,
                      sim::DispatchPolicy::kDirect)
            .switching_times;
    const double maxvol = smoothing.required_max_rate_kw;
    table.add_row({util::strfmt("%.3f", level), std::to_string(raw_switches),
                   std::to_string(switches), util::strfmt("%.0f", maxvol),
                   util::strfmt("%.1f", maxvol / 12.0),
                   std::to_string(smoothing.smoothed_intervals),
                   util::strfmt("%.1f", cycles)});
  }
  table.print(std::cout);

  std::cout << "\n# Region-I ablation (stable_cdf sweep at extreme_cdf=0.95):\n";
  sim::TablePrinter ablation({"stable_cdf", "w_smooth_switches",
                              "smoothed_intervals", "battery_cycles"});
  for (double stable : {0.0, 0.10, 0.25, 0.40, 0.60}) {
    auto config = sim::default_config(kCapacitySmall);
    config.stable_cdf = stable;
    const core::Smoother middleware(config);
    double cycles = 0.0;
    const auto smoothing = middleware.smooth_supply(scenario.supply, &cycles);
    const std::size_t switches =
        sim::dispatch(smoothing.supply, scenario.demand,
                      sim::DispatchPolicy::kDirect)
            .switching_times;
    ablation.add_row({util::strfmt("%.2f", stable), std::to_string(switches),
                      std::to_string(smoothing.smoothed_intervals),
                      util::strfmt("%.1f", cycles)});
  }
  ablation.print(std::cout);

  std::cout << "\npaper shape: raising the CDF level smooths more intervals "
               "-> fewer switches but a larger required battery rate/"
               "capacity; the paper settles on 0.95 (Region-II-2 = 5%).\n";
  return 0;
}
