// Fig. 6: effect of the Region-II-1 / Region-II-2 variance threshold.
//
// Sweeps the CDF level that separates Region-II-1 from Region-II-2 (the
// fraction of intervals FS is allowed to smooth) and reports, per level:
// switching times without smoothing, with smoothing, and the required
// maximum battery charge/discharge rate ("Battery MaxVol" — which, under
// the paper's sizing rule, also tracks the required battery capacity).
//
// Also reports the Region-I ablation (stable_cdf -> 0) the paper discusses:
// smoothing even the flat intervals costs battery operations for little
// switching gain.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace smoother;
  using namespace smoother::bench;
  const smoother::bench::Harness harness(argc, argv);
  const std::size_t threads = harness.threads();
  const std::uint64_t seed = harness.seed_or(kSeedWind);
  sim::print_experiment_header(
      std::cout, "Fig. 6",
      "threshold sweep: switching times and required battery rate vs CDF");

  const auto scenario = sim::make_web_scenario(
      trace::WebWorkloadPresets::nasa(), trace::WindSitePresets::texas_10(),
      kCapacitySmall, kWeek, seed);

  const std::size_t raw_switches =
      sim::dispatch(scenario.supply, scenario.demand,
                    sim::DispatchPolicy::kDirect)
          .switching_times;

  // Both sweeps are pure functions of their grid point (the scenario is
  // shared read-only), so they run on the work-stealing pool; ordered
  // collection keeps the printed table identical for every --threads.
  runtime::SweepRunner runner(
      runtime::SweepOptions{threads, seed, "fig06-threshold-sweep"});

  sim::TablePrinter table({"cdf_level", "wo_smooth_switches",
                           "w_smooth_switches", "battery_maxvol_kw",
                           "battery_capacity_kwh", "smoothed_intervals",
                           "battery_cycles"});
  runtime::ParamGrid level_grid;
  level_grid.axis("cdf_level", {0.80, 0.85, 0.90, 0.95, 0.98, 0.995, 1.0});
  auto level_rows = runner.run_grid(
      level_grid,
      [&](const runtime::ParamGrid::Point& point,
          runtime::TaskContext&) -> std::vector<std::string> {
        const double level = point["cdf_level"];
        auto config = sim::default_config(kCapacitySmall);
        config.extreme_cdf = level;
        // Give FS a generous battery so the *required* rate is observed,
        // not clipped: the sweep asks how big a battery each level needs.
        config.battery = battery::spec_for_max_rate(kCapacitySmall,
                                                    util::kFiveMinutes, 2.0);
        config.battery.charge_efficiency = 1.0;
        config.battery.discharge_efficiency = 1.0;
        const core::Smoother middleware(config);
        double cycles = 0.0;
        const auto smoothing =
            middleware.smooth_supply(scenario.supply, &cycles);
        const std::size_t switches =
            sim::dispatch(smoothing.supply, scenario.demand,
                          sim::DispatchPolicy::kDirect)
                .switching_times;
        const double maxvol = smoothing.required_max_rate_kw;
        return {util::strfmt("%.3f", level), std::to_string(raw_switches),
                std::to_string(switches), util::strfmt("%.0f", maxvol),
                util::strfmt("%.1f", maxvol / 12.0),
                std::to_string(smoothing.smoothed_intervals),
                util::strfmt("%.1f", cycles)};
      });
  for (auto& row : level_rows) table.add_row(std::move(row.value));
  table.print(std::cout);

  std::cout << "\n# Region-I ablation (stable_cdf sweep at extreme_cdf=0.95):\n";
  sim::TablePrinter ablation({"stable_cdf", "w_smooth_switches",
                              "smoothed_intervals", "battery_cycles"});
  runtime::ParamGrid stable_grid;
  stable_grid.axis("stable_cdf", {0.0, 0.10, 0.25, 0.40, 0.60});
  auto ablation_rows = runner.run_grid(
      stable_grid,
      [&](const runtime::ParamGrid::Point& point,
          runtime::TaskContext&) -> std::vector<std::string> {
        const double stable = point["stable_cdf"];
        auto config = sim::default_config(kCapacitySmall);
        config.stable_cdf = stable;
        const core::Smoother middleware(config);
        double cycles = 0.0;
        const auto smoothing =
            middleware.smooth_supply(scenario.supply, &cycles);
        const std::size_t switches =
            sim::dispatch(smoothing.supply, scenario.demand,
                          sim::DispatchPolicy::kDirect)
                .switching_times;
        return {util::strfmt("%.2f", stable), std::to_string(switches),
                std::to_string(smoothing.smoothed_intervals),
                util::strfmt("%.1f", cycles)};
      });
  for (auto& row : ablation_rows) ablation.add_row(std::move(row.value));
  ablation.print(std::cout);

  std::cout << "\npaper shape: raising the CDF level smooths more intervals "
               "-> fewer switches but a larger required battery rate/"
               "capacity; the paper settles on 0.95 (Region-II-2 = 5%).\n";
  return 0;
}
