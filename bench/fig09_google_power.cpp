// Fig. 9: power consumption of the Google cluster over about a month,
// derived from CPU utilization via Eq. 3-5 (11,000 servers, 186 W peak,
// 62 W idle, constant network share, PUE for cooling).
#include "common.hpp"

#include "smoother/power/datacenter.hpp"
#include "smoother/stats/descriptive.hpp"

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Fig. 9", "Google-cluster power consumption over a month");

  const trace::GoogleClusterModel cluster;
  const auto utilization = cluster.generate_month(kSeedWeb);
  const auto dc = sim::paper_datacenter();
  const auto power = dc.power_series(utilization);

  sim::print_series_csv(std::cout, "system_power_kw", power, 240);

  const auto summary = stats::summarize(power.values());
  std::cout << util::strfmt(
      "\nmean %.0f kW, min %.0f kW, max %.0f kW, stddev %.0f kW\n",
      summary.mean, summary.min, summary.max, summary.stddev);
  std::cout << util::strfmt(
      "feasible band: idle floor %.0f kW, full-load ceiling %.0f kW\n",
      dc.min_system_power().value(), dc.max_system_power().value());
  std::cout << "paper shape: a ~1.2-2.1 MW band with daily ripple and slow "
               "weekly drift.\n";
  return 0;
}
