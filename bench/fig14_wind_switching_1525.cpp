// Fig. 14: switching times W/ Comp vs W/ FS, Table III wind traces
// (installed wind capacity 1525 kW).
#include "common.hpp"

#include <algorithm>

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Fig. 14",
      "switching times W/ Comp vs W/ FS, Table III wind traces @ 1525 kW");
  run_wind_switching_sweep(kCapacityLarge);
  return 0;
}
