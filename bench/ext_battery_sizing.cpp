// Extension: battery-capacity ablation.
//
// The paper sizes the battery to sustain one 5-minute point at the maximum
// charge/discharge rate and remarks that "the larger battery capacity
// (e.g., which can sustain thirty minutes ...) will yield the better
// smoothing effect". This bench verifies that remark: headroom x1 (the
// paper's sizing) through x12 (one hour), measuring switching times,
// variance reduction and the battery activity.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace smoother;
  using namespace smoother::bench;
  const smoother::bench::Harness harness(argc, argv);
  const std::size_t threads = harness.threads();
  sim::print_experiment_header(
      std::cout, "Extension: battery sizing",
      "smoothing quality vs battery capacity headroom (paper's remark)");

  const auto scenario = sim::make_web_scenario(
      trace::WebWorkloadPresets::nasa(), trace::WindSitePresets::texas_10(),
      kCapacitySmall, kWeek, kSeedWind);
  const std::size_t raw =
      sim::dispatch(scenario.supply, scenario.demand,
                    sim::DispatchPolicy::kDirect)
          .switching_times;

  sim::TablePrinter table({"headroom", "capacity_kwh", "w_fs_switches",
                           "var_reduction_%", "battery_cycles"});
  runtime::ParamGrid grid;
  grid.axis("headroom", {1.0, 2.0, 4.0, 6.0, 12.0});
  runtime::SweepRunner runner(
      runtime::SweepOptions{threads, 0, "ext-battery-sizing"});
  auto rows = runner.run_grid(
      grid,
      [&](const runtime::ParamGrid::Point& point,
          runtime::TaskContext&) -> std::vector<std::string> {
        const double headroom = point["headroom"];
        auto config = sim::default_config(kCapacitySmall);
        config.battery = battery::spec_for_max_rate(
            kCapacitySmall * 0.5, util::kFiveMinutes, headroom);
        config.battery.charge_efficiency = 1.0;
        config.battery.discharge_efficiency = 1.0;
        const core::Smoother middleware(config);
        double cycles = 0.0;
        const auto smoothing =
            middleware.smooth_supply(scenario.supply, &cycles);
        const std::size_t switches =
            sim::dispatch(smoothing.supply, scenario.demand,
                          sim::DispatchPolicy::kDirect)
                .switching_times;
        return {util::strfmt("x%.0f", headroom),
                util::strfmt("%.0f", config.battery.capacity.value()),
                std::to_string(switches),
                util::strfmt("%.0f",
                             100.0 * smoothing.mean_variance_reduction()),
                util::strfmt("%.1f", cycles)};
      });
  for (auto& row : rows) table.add_row(std::move(row.value));
  table.print(std::cout);
  std::cout << util::strfmt("\n(raw supply, no FS: %zu switches)\n", raw);
  std::cout << "expected shape: bigger battery -> stronger smoothing and "
               "fewer switches, with diminishing returns; equivalent cycles "
               "drop because each cycle moves through a larger pack.\n";
  return 0;
}
