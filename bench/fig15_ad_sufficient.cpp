// Fig. 15: Active Delay with *sufficient* renewable power — the adjusted
// workload demand hugs the supply curve from below, using almost all of
// the demand-coverable renewable energy.
#include "common.hpp"

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Fig. 15", "Active Delay with sufficient renewable power");

  const auto scenario = sim::make_batch_scenario(
      trace::BatchWorkloadPresets::hpc2n(),
      trace::WindSitePresets::colorado_11005(), /*supply_ratio=*/1.5,
      util::days(2.0), kServers, kSeedBatch);
  const auto config =
      sim::default_config(util::Kilowatts{scenario.supply.max()});

  core::SmootherConfig with_ad = config;
  with_ad.enable_active_delay = true;
  const auto ad = core::Smoother(with_ad).run(scenario.supply, scenario.jobs,
                                              scenario.total_servers);
  core::SmootherConfig no_ad = config;
  no_ad.enable_active_delay = false;
  const auto imm = core::Smoother(no_ad).run(scenario.supply, scenario.jobs,
                                             scenario.total_servers);

  // All three curves on the 1-minute scheduling grid (downsampled rows).
  const auto supply = ad.smoothing.supply.resample(util::kOneMinute);
  std::cout << "minute,supply_kw,demand_initial_kw,demand_with_ad_kw\n";
  for (std::size_t i = 0; i < supply.size(); i += 15)
    std::cout << util::strfmt("%.0f,%.1f,%.1f,%.1f\n",
                              supply.time_at(i).value(), supply[i],
                              imm.schedule.demand[i], ad.schedule.demand[i]);

  std::cout << util::strfmt(
      "\nrenewable utilization: initial %.3f -> with AD %.3f "
      "(supply %.0f kWh = 1.5x workload energy %.0f kWh)\n",
      imm.renewable_utilization, ad.renewable_utilization,
      scenario.renewable_energy.value(), scenario.workload_energy.value());
  std::cout << "paper shape: with plentiful supply the red (adjusted) demand "
               "fits under the blue supply; utilization is bounded by the "
               "workload's own energy need.\n";
  return 0;
}
