// Table I: the five web workload traces and their average CPU
// utilizations. Regenerated: each preset's measured week-long mean must
// match the published column.
#include "common.hpp"

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Table I", "web workload traces and average CPU utilization");

  static constexpr const char* kDescriptions[] = {
      "CS departmental Web server", "University Web server",
      "Kennedy Space Center Web server", "ClarkNet Web server",
      "UC Berkeley IP Web server"};
  sim::TablePrinter table({"web", "description", "paper_avg_%",
                           "measured_avg_%", "peak_%"});
  std::size_t i = 0;
  for (const auto& params : trace::WebWorkloadPresets::all()) {
    const trace::WebWorkloadModel model(params);
    const auto week = model.generate_week(kSeedWeb + i);
    table.add_row({params.name, kDescriptions[i],
                   util::strfmt("%.2f", 100.0 * params.mean_utilization),
                   util::strfmt("%.2f", 100.0 * week.mean()),
                   util::strfmt("%.2f", 100.0 * week.max())});
    ++i;
  }
  table.print(std::cout);
  std::cout << "\npaper values: Calgary 3.63, U of S 7.21, NASA 28.89, "
               "Clark 35.78, UCB 46.04 (%).\n";
  return 0;
}
