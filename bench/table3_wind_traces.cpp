// Table III: the six wind power traces, their capacity factors and
// volatility groups, measured through the E48 turbine curve over a month.
#include "common.hpp"

#include <numeric>

#include "smoother/power/capacity_factor.hpp"
#include "smoother/power/turbine.hpp"

int main(int argc, char** argv) {
  const smoother::bench::Harness harness(argc, argv);
  using namespace smoother;
  using namespace smoother::bench;
  sim::print_experiment_header(
      std::cout, "Table III",
      "wind power traces: capacity factor and volatility group");

  static const double kPaperCf[] = {17.9, 19.0, 17.9, 32.4, 29.9, 29.6};
  sim::TablePrinter table({"site", "group", "paper_cf_%", "measured_cf_%",
                           "mean_hourly_cf_variance"});
  std::size_t i = 0;
  for (const auto& site : trace::WindSitePresets::all()) {
    const trace::WindSpeedModel model(site);
    const auto speed = model.generate(kMonth, util::kFiveMinutes, kSeedWind);
    const auto supply =
        power::TurbineCurve::enercon_e48().power_series(speed);
    const double cf = power::average_capacity_factor(
        supply, util::Kilowatts{800.0});
    const auto vars = power::interval_capacity_factor_variances(
        supply, util::Kilowatts{800.0}, 12);
    const double mean_var = std::accumulate(vars.begin(), vars.end(), 0.0) /
                            static_cast<double>(vars.size());
    table.add_row({site.name, i < 3 ? "low volatility" : "high volatility",
                   util::strfmt("%.1f", kPaperCf[i]),
                   util::strfmt("%.1f", 100.0 * cf),
                   util::strfmt("%.5f", mean_var)});
    ++i;
  }
  table.print(std::cout);
  std::cout << "\npaper shape: low-volatility sites ~18-19% CF, "
               "high-volatility ~30-32% CF, with clearly separated variance "
               "levels between the groups.\n";
  return 0;
}
