// Quickstart: the Smoother middleware in ~60 lines.
//
// Generates one volatile day of wind power, runs Flexible Smoothing over
// it, schedules a handful of deferrable jobs with Active Delay, and prints
// the headline metrics the paper reports (switching times and renewable
// utilization), with and without the middleware.
#include <cstdio>

#include "smoother/core/smoother.hpp"
#include "smoother/sim/experiments.hpp"
#include "smoother/sim/scenario.hpp"

int main() {
  using namespace smoother;
  const util::Kilowatts capacity{976.0};

  // 1. A batch-workload scenario: two days of night-peaking wind sized to
  //    the workload's energy, plus an SWF-like stream of deferrable jobs.
  const sim::BatchScenario scenario = sim::make_batch_scenario(
      trace::BatchWorkloadPresets::hpc2n(), trace::WindSitePresets::texas_10(),
      /*supply_ratio=*/1.0, util::days(2.0), /*total_servers=*/11000,
      /*seed=*/42);
  std::printf("scenario: %s (%zu jobs, %.0f kWh wind, %.0f kWh workload)\n",
              scenario.name.c_str(), scenario.jobs.size(),
              scenario.renewable_energy.value(),
              scenario.workload_energy.value());

  // 2. Configure the middleware. default_config applies the paper's
  //    choices: battery sized to one 5-minute point at max rate, SoC
  //    corridor [0.1 M, M], Region-II-2 = top 5 % of the variance CDF.
  const core::SmootherConfig config =
      sim::default_config(util::Kilowatts{scenario.supply.max()});

  // 3. Run with the middleware fully on...
  const core::Smoother middleware(config);
  const core::RunReport with = middleware.run(
      scenario.supply, scenario.jobs, scenario.total_servers);

  // ...and with both components off, as the baseline.
  core::SmootherConfig off = config;
  off.enable_flexible_smoothing = false;
  off.enable_active_delay = false;
  const core::RunReport without = core::Smoother(off).run(
      scenario.supply, scenario.jobs, scenario.total_servers);

  // 4. Compare.
  std::printf("\n%28s %12s %12s\n", "", "baseline", "smoother");
  std::printf("%28s %12zu %12zu\n", "energy switching times",
              without.switching_times, with.switching_times);
  std::printf("%28s %12.3f %12.3f\n", "renewable utilization",
              without.renewable_utilization, with.renewable_utilization);
  std::printf("%28s %12.1f %12.1f\n", "grid energy (kWh)",
              without.grid_energy.value(), with.grid_energy.value());
  std::printf("%28s %12s %12.2f\n", "battery cycles", "-",
              with.battery_equivalent_cycles);
  std::printf("\nsmoothed %zu of %zu hourly intervals (%.0f%% mean variance "
              "reduction within them)\n",
              with.smoothing.smoothed_intervals,
              with.smoothing.intervals.size(),
              100.0 * with.smoothing.mean_variance_reduction());
  return 0;
}
