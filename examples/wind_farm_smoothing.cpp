// Flexible Smoothing study on a single volatile day.
//
// Walks the FS pipeline step by step on one day of high-volatility wind:
// region classification, per-interval QP plans, battery execution — and
// prints an hour-by-hour table plus ASCII sparklines of the raw vs smoothed
// supply (the paper's Fig. 5 picture, in a terminal).
//
// Usage: wind_farm_smoothing [seed]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "smoother/battery/battery.hpp"
#include "smoother/battery/wear.hpp"
#include "smoother/core/flexible_smoothing.hpp"
#include "smoother/core/smoother.hpp"
#include "smoother/sim/experiments.hpp"
#include "smoother/sim/report.hpp"
#include "smoother/util/format.hpp"
#include "smoother/sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace smoother;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2024;
  const util::Kilowatts capacity{976.0};

  // One volatile day of 5-minute wind power.
  const auto raw = sim::wind_power_series(
      trace::WindSitePresets::texas_10(), capacity, util::days(1.0),
      util::kFiveMinutes, seed);

  const core::SmootherConfig config = sim::default_config(capacity);
  const core::Smoother middleware(config);

  // Thresholds are derived from a month of history at the same site, as a
  // production deployment would (the paper derives them from Fig. 3).
  const auto history = sim::wind_power_series(
      trace::WindSitePresets::texas_10(), capacity, util::days(28.0),
      util::kFiveMinutes, seed ^ 0xabcdef);
  const core::RegionClassifier classifier = middleware.make_classifier(history);

  battery::Battery battery(config.battery, config.initial_soc_fraction);
  battery::WearTracker wear;
  wear.record_soc(battery.soc_fraction());

  const core::FlexibleSmoothing fs(config.flexible_smoothing);
  const core::SmoothingResult result = fs.smooth(raw, classifier, battery);
  wear.record_soc(battery.soc_fraction());

  sim::print_experiment_header(std::cout, "FS study",
                               "per-interval Flexible Smoothing decisions");
  sim::TablePrinter table({"hour", "region", "cf_variance", "var_before",
                           "var_after", "reduction_%", "max_rate_kw"});
  for (std::size_t i = 0; i < result.intervals.size(); ++i) {
    const auto& interval = result.intervals[i];
    const auto& plan = result.plans[i];
    const double reduction =
        plan.variance_before > 0.0
            ? 100.0 * (plan.variance_before - plan.variance_after) /
                  plan.variance_before
            : 0.0;
    table.add_row({std::to_string(i), core::to_string(interval.region),
                   util::strfmt("%.5f", interval.cf_variance),
                   util::strfmt("%.0f", plan.variance_before),
                   util::strfmt("%.0f", plan.variance_after),
                   util::strfmt("%.1f", reduction),
                   util::strfmt("%.0f", plan.max_rate_kw)});
  }
  table.print(std::cout);

  std::printf("\nraw supply      |%s|\n",
              sim::sparkline(raw).c_str());
  std::printf("smoothed supply |%s|\n",
              sim::sparkline(result.supply).c_str());
  std::printf(
      "\nsmoothed %zu/%zu intervals; required max charge/discharge rate "
      "%.0f kW;\nbattery throughput %.1f equivalent cycles, estimated life "
      "consumed %.4f%%\n",
      result.smoothed_intervals, result.intervals.size(),
      result.required_max_rate_kw, battery.equivalent_full_cycles(),
      100.0 * wear.life_consumed());
  return 0;
}
