// Hybrid wind+solar microgrid example.
//
// Runs the complete middleware on a 60/40 wind+solar bus feeding a
// datacenter with both interactive (web) and deferrable (batch) load,
// with the trend-aware smoothing objective (the right choice once solar
// is in the mix) and a grid-draw cap on the scheduler. Prints the kind of
// daily operations report an operator would want.
//
// Usage: hybrid_microgrid [days] [seed]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "smoother/core/metrics.hpp"
#include "smoother/core/smoother.hpp"
#include "smoother/sim/cost.hpp"
#include "smoother/sim/experiments.hpp"
#include "smoother/sim/report.hpp"
#include "smoother/sim/scenario.hpp"
#include "smoother/stats/descriptive.hpp"
#include "smoother/util/format.hpp"

int main(int argc, char** argv) {
  using namespace smoother;
  const double days = argc > 1 ? std::atof(argv[1]) : 7.0;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 404;
  const auto horizon = util::days(days);

  // Deferrable batch load first; the hybrid bus is then sized so its
  // energy is ~1.2x the workload's (a realistically tight microgrid).
  power::DatacenterSpec dc_spec;
  dc_spec.server_count = 11000;
  const power::DatacenterPowerModel dc(dc_spec);
  const trace::BatchWorkloadModel batch(trace::BatchWorkloadPresets::hpc2n());
  auto jobs = batch.generate(horizon, dc_spec.server_count, dc, seed ^ 0xb);
  double workload_kwh = 0.0;
  for (const auto& job : jobs) workload_kwh += job.total_energy().value();

  util::Kilowatts wind_capacity{732.0}, solar_capacity{488.0};
  auto supply = sim::make_hybrid_supply(
      trace::WindSitePresets::colorado_11005(), wind_capacity, solar_capacity,
      horizon, util::kFiveMinutes, seed);
  const double scale =
      1.2 * workload_kwh / supply.total_energy().value();
  supply = supply * scale;
  wind_capacity *= scale;
  solar_capacity *= scale;

  // Middleware: trend-aware smoothing (solar in the mix) + a grid cap.
  core::SmootherConfig config =
      sim::default_config(wind_capacity + solar_capacity);
  config.flexible_smoothing.objective =
      core::SmoothingObjective::kAroundTrend;
  config.flexible_smoothing.lookahead_intervals = 2;
  config.active_delay.max_grid_draw_kw = 800.0;

  const core::Smoother middleware(config);
  const core::RunReport report =
      middleware.run(supply, jobs, dc_spec.server_count);

  sim::print_experiment_header(
      std::cout, "hybrid microgrid",
      util::strfmt("%.0f days, %.0f kW wind + %.0f kW solar", days,
                   wind_capacity.value(), solar_capacity.value()));

  std::printf("supply: %.0f kWh generated, roughness %.0f -> %.0f kW rms "
              "after smoothing\n",
              supply.total_energy().value(),
              stats::rms_successive_diff(supply.values()),
              stats::rms_successive_diff(report.smoothing.supply.values()));
  std::printf("smoothed %zu/%zu intervals, battery cycles %.1f\n",
              report.smoothing.smoothed_intervals,
              report.smoothing.intervals.size(),
              report.battery_equivalent_cycles);
  std::printf("schedule: %zu jobs, %zu deadline misses\n",
              report.schedule.outcome.placements.size(),
              report.schedule.outcome.deadline_misses);
  std::printf("renewable utilization %.3f, switching times %zu, grid "
              "energy %.0f kWh\n\n",
              report.renewable_utilization, report.switching_times,
              report.grid_energy.value());

  // Daily rollup.
  const auto supply_1min = report.smoothing.supply.resample(util::kOneMinute);
  sim::TablePrinter daily({"day", "supply_kwh", "used_kwh", "grid_kwh",
                           "utilization"});
  const std::size_t per_day = 24 * 60;
  for (std::size_t day = 0;
       (day + 1) * per_day <= supply_1min.size(); ++day) {
    const auto s = supply_1min.slice(day * per_day, per_day);
    const auto d = report.schedule.demand.slice(day * per_day, per_day);
    daily.add_row(
        {std::to_string(day + 1),
         util::strfmt("%.0f", s.total_energy().value()),
         util::strfmt("%.0f", core::renewable_energy_used(s, d).value()),
         util::strfmt("%.0f", core::grid_energy_needed(s, d).value()),
         util::strfmt("%.2f", core::renewable_utilization(s, d))});
  }
  daily.print(std::cout);

  // Weekly bill under the default tariff.
  util::TimeSeries grid(report.schedule.demand.step(),
                        report.schedule.demand.size());
  for (std::size_t i = 0; i < grid.size(); ++i)
    grid[i] = std::max(report.schedule.demand[i] - supply_1min[i], 0.0);
  const sim::CostModel cost;
  const auto bill = cost.price(grid, 0.0, config.battery.capacity);
  std::printf("\nbill: energy $%.2f + demand charge $%.2f = $%.2f "
              "(grid peak %.0f kW, capped at %.0f kW by the scheduler)\n",
              bill.grid_energy_cost, bill.demand_charge, bill.total(),
              grid.max(), config.active_delay.max_grid_draw_kw);
  return 0;
}
