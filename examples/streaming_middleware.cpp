// Streaming middleware example: the OnlineSmoother fed sample by sample.
//
// Shows the deployment shape of Smoother: samples arrive one at a time,
// thresholds are learned during a warmup day, and decisions happen at
// interval boundaries. A "predictor" (here: the generator itself plus AR(1)
// noise, standing in for the LSSVM-class models the paper cites) is plugged
// in through the forecast-oracle hook.
//
// Usage: streaming_middleware [days] [seed]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "smoother/core/forecast.hpp"
#include "smoother/core/online.hpp"
#include "smoother/sim/report.hpp"
#include "smoother/sim/scenario.hpp"
#include "smoother/stats/descriptive.hpp"
#include "smoother/util/format.hpp"

int main(int argc, char** argv) {
  using namespace smoother;
  const double days = argc > 1 ? std::atof(argv[1]) : 4.0;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  const util::Kilowatts capacity{976.0};

  // The "live" feed the middleware will consume sample by sample.
  const auto feed = sim::wind_power_series(
      trace::WindSitePresets::texas_10(), capacity, util::days(days),
      util::kFiveMinutes, seed);

  core::OnlineSmootherConfig config;
  config.rated_power = capacity;
  config.warmup_intervals = 24;  // learn thresholds over the first day
  auto battery_spec =
      battery::spec_for_max_rate(capacity * 0.5, util::kFiveMinutes, 2.0);
  battery_spec.charge_efficiency = 1.0;
  battery_spec.discharge_efficiency = 1.0;
  core::OnlineSmoother middleware(config, battery::Battery(battery_spec));

  // Plug in a predictor: the true upcoming interval corrupted with 7.5 %
  // AR(1) error (the band the paper cites for LSSVM-GSA).
  core::NoisyForecaster predictor(0.075, 0.0, seed ^ 0xfeedface);
  middleware.set_forecast_oracle([&](std::size_t interval) {
    const auto window = feed.slice(interval * 12, 12);
    const auto noisy = predictor.forecast(window);
    return std::vector<double>(noisy.values().begin(), noisy.values().end());
  });

  sim::print_experiment_header(
      std::cout, "streaming middleware",
      util::strfmt("%.0f days of 5-minute samples, warmup 1 day", days));

  // Feed the samples; print a line per 6 hours of operation.
  std::size_t smoothed_count = 0;
  for (std::size_t i = 0; i < feed.size(); ++i) {
    const auto record = middleware.push(feed[i]);
    if (!record) continue;
    if (record->smoothed) ++smoothed_count;
    if ((record->index + 1) % 6 == 0) {
      std::printf(
          "t=%5.1fh  interval %3zu  %-12s %s var %8.0f -> %8.0f  soc %.2f\n",
          static_cast<double>(record->index + 1), record->index,
          core::to_string(record->region).c_str(),
          record->warmup ? "warmup " : (record->smoothed ? "SMOOTH " : "pass   "),
          record->variance_before, record->variance_after,
          middleware.battery().soc_fraction());
    }
  }

  const auto& output = middleware.output();
  std::printf(
      "\nprocessed %zu samples -> %zu emitted; %zu/%zu intervals smoothed\n",
      feed.size(), output.size(), smoothed_count,
      middleware.records().size());
  std::printf("input  roughness %.0f kW rms\noutput roughness %.0f kW rms\n",
              stats::rms_successive_diff(
                  feed.slice(0, output.size()).values()),
              stats::rms_successive_diff(output.values()));
  std::printf("learned thresholds: Region-I < %.5f, Region-II-2 >= %.5f\n",
              middleware.thresholds().stable_below,
              middleware.thresholds().extreme_above);
  return 0;
}
