// Month-long datacenter co-simulation.
//
// The closest thing to a production deployment of Smoother in this repo:
// a Google-cluster-like interactive demand, a batch stream on top, a wind
// farm supplying the renewable side, and the full middleware in the loop.
// Reports weekly and monthly rollups for the four arms the paper compares
// (raw / Comp / FS / FS+AD).
//
// Usage: datacenter_sim [days] [seed]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "smoother/battery/battery.hpp"
#include "smoother/core/smoother.hpp"
#include "smoother/sim/dispatch.hpp"
#include "smoother/sim/experiments.hpp"
#include "smoother/sim/report.hpp"
#include "smoother/util/format.hpp"
#include "smoother/sim/scenario.hpp"
#include "smoother/trace/google_cluster.hpp"

int main(int argc, char** argv) {
  using namespace smoother;
  const double days = argc > 1 ? std::atof(argv[1]) : 30.0;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;
  const auto horizon = util::days(days);
  const util::Kilowatts capacity{1525.0};

  // Interactive (non-deferrable) demand: Google-cluster-like utilization
  // mapped to dynamic power.
  const trace::GoogleClusterModel cluster;
  const auto utilization =
      cluster.generate(horizon, util::kFiveMinutes, seed);
  const auto dc = sim::paper_datacenter();
  // The renewable-powered sub-cluster hosts a slice of the interactive
  // load: scale it into the farm's range.
  auto interactive = sim::dynamic_power_series(utilization, dc) * 0.5;

  // Wind supply.
  const auto supply = sim::wind_power_series(
      trace::WindSitePresets::wyoming_16419(), capacity, horizon,
      util::kFiveMinutes, seed ^ 0xbeef);

  const core::SmootherConfig config = sim::default_config(capacity);

  sim::print_experiment_header(
      std::cout, "datacenter co-simulation",
      util::strfmt("%.0f days, %.0f kW installed wind, 11000 servers", days,
                   capacity.value()));

  // --- Interactive arm: switching-times comparison (raw/Comp/FS).
  const auto switching =
      sim::run_switching_comparison(supply, interactive, config);
  sim::TablePrinter arms({"arm", "switching_times"});
  arms.add_row({std::string("W/O FS (raw wind)"),
                std::to_string(switching.without_fs)});
  arms.add_row({std::string("W/ Comp (battery baseline)"),
                std::to_string(switching.with_comp)});
  arms.add_row({std::string("W/ FS (Smoother)"),
                std::to_string(switching.with_fs)});
  arms.print(std::cout);
  std::printf("FS required max battery rate: %.0f kW (capacity %.1f kWh)\n\n",
              switching.fs_required_max_rate_kw,
              config.battery.capacity.value());

  // --- Batch arm: utilization with and without Active Delay.
  const auto batch = sim::make_batch_scenario(
      trace::BatchWorkloadPresets::lanl_cm5(),
      trace::WindSitePresets::wyoming_16419(), 1.0, horizon, 11000,
      seed ^ 0xfeed);
  const auto util_cmp = sim::run_utilization_comparison(
      batch, sim::default_config(util::Kilowatts{batch.supply.max()}));
  sim::TablePrinter util_table(
      {"arm", "renewable_utilization", "deadline_misses"});
  util_table.add_row({std::string("W/ FS, W/O AD"),
                      util::strfmt("%.3f", util_cmp.without_ad),
                      std::to_string(util_cmp.deadline_misses_without)});
  util_table.add_row({std::string("W/ FS, W/ AD"),
                      util::strfmt("%.3f", util_cmp.with_ad),
                      std::to_string(util_cmp.deadline_misses_with)});
  util_table.print(std::cout);
  std::printf("Active Delay improvement: %+.1f%%\n\n",
              util_cmp.improvement_percent());

  // --- Weekly rollup of the FS arm's energy accounting.
  const core::Smoother middleware(config);
  const auto smoothing = middleware.smooth_supply(supply);
  const auto dispatch_fs = sim::dispatch(smoothing.supply, interactive,
                                         sim::DispatchPolicy::kDirect);
  sim::TablePrinter weekly({"week", "wind_kwh", "used_kwh", "grid_kwh",
                            "spilled_kwh", "switches"});
  const std::size_t samples_per_week = 7 * 288;
  for (std::size_t week = 0; week * samples_per_week < supply.size(); ++week) {
    const std::size_t start = week * samples_per_week;
    const std::size_t count =
        std::min(samples_per_week, supply.size() - start);
    if (count < 2) break;
    const auto wind = smoothing.supply.slice(start, count);
    const auto load = interactive.slice(start, count);
    weekly.add_row(
        {std::to_string(week + 1),
         util::strfmt("%.0f", wind.total_energy().value()),
         util::strfmt("%.0f", core::renewable_energy_used(wind, load).value()),
         util::strfmt("%.0f", core::grid_energy_needed(wind, load).value()),
         util::strfmt("%.0f", core::unusable_renewable(wind, load).value()),
         std::to_string(core::energy_switching_times(wind, load))});
  }
  weekly.print(std::cout);
  std::printf("\nmonthly renewable utilization (interactive slice): %.3f\n",
              dispatch_fs.renewable_utilization);
  return 0;
}
