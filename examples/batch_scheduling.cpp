// Active Delay vs classical schedulers on an SWF-style batch stream.
//
// Generates a production-log-like job stream (HPC2N preset), exports it to
// the Standard Workload Format, re-imports it (showing the archive-file
// path a user with real logs would take), and schedules it with three
// policies: immediate (FIFO), earliest-deadline-first, and Active Delay.
//
// Usage: batch_scheduling [swf_path]
//   With an argument, the jobs are read from that SWF file instead.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "smoother/core/active_delay.hpp"
#include "smoother/core/metrics.hpp"
#include "smoother/sim/report.hpp"
#include "smoother/util/format.hpp"
#include "smoother/sim/scenario.hpp"
#include "smoother/trace/swf.hpp"

int main(int argc, char** argv) {
  using namespace smoother;
  const std::size_t servers = 11000;
  const auto horizon = util::days(3.0);

  power::DatacenterSpec dc_spec;
  dc_spec.server_count = servers;
  const power::DatacenterPowerModel dc(dc_spec);

  // Obtain SWF records: from a real archive file, or synthesized.
  std::vector<trace::SwfRecord> records;
  if (argc > 1) {
    records = trace::load_swf(argv[1], /*lenient=*/true);
    std::printf("loaded %zu SWF records from %s\n", records.size(), argv[1]);
  } else {
    const trace::BatchWorkloadModel model(trace::BatchWorkloadPresets::hpc2n());
    records = model.generate_swf(horizon, servers, /*seed=*/7);
    std::printf("synthesized %zu SWF records (HPC2N preset)\n",
                records.size());
    // Round-trip through the format, as a real deployment would store them.
    std::stringstream swf;
    trace::write_swf(swf, records);
    records = trace::parse_swf(swf);
  }
  const auto jobs = trace::swf_to_jobs(records, dc);

  // Night-peaking wind sized around the workload.
  double workload_kwh = 0.0;
  for (const auto& job : jobs) workload_kwh += job.total_energy().value();
  trace::WindSiteParams site = trace::WindSitePresets::colorado_11005();
  site.diurnal_amplitude = 0.45;
  site.diurnal_peak_hour = 2.0;
  auto supply = sim::wind_power_series(site, util::Kilowatts{976.0}, horizon,
                                       util::kOneMinute, 99);
  supply = supply * (workload_kwh / supply.total_energy().value());

  sched::ScheduleRequest request;
  request.jobs = jobs;
  request.renewable = supply;
  request.total_servers = servers;

  sim::print_experiment_header(
      std::cout, "AD comparison",
      "renewable use under immediate / EDF / Active Delay scheduling");
  sim::TablePrinter table({"policy", "renewable_used_kwh", "utilization",
                           "deadline_misses", "switching_times"});

  std::vector<std::unique_ptr<sched::Scheduler>> policies;
  policies.push_back(std::make_unique<sched::ImmediateScheduler>());
  policies.push_back(std::make_unique<sched::EdfScheduler>());
  policies.push_back(std::make_unique<core::ActiveDelayScheduler>());
  for (const auto& policy : policies) {
    const auto result = policy->schedule(request);
    const double generated = supply.total_energy().value();
    table.add_row(
        {policy->name(),
         util::strfmt("%.1f", result.outcome.renewable_energy_used.value()),
         util::strfmt("%.3f",
                      result.outcome.renewable_energy_used.value() / generated),
         std::to_string(result.outcome.deadline_misses),
         std::to_string(core::energy_switching_times(supply, result.demand))});
  }
  table.print(std::cout);
  std::printf("\n(renewable generated over the horizon: %.1f kWh)\n",
              supply.total_energy().value());
  return 0;
}
